"""A from-scratch LZ4 block-format codec with vectorized fast kernels.

The paper's compression study includes lz4, which the Python standard
library does not provide, so this module implements the LZ4 *block* format
(https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md) from scratch.
Three compressors share the format:

* :func:`compress_ref` — the original pure-Python greedy scanner: a 4-byte
  hash table finds the most recent prior occurrence of the next 4 bytes
  and extends the match forward, sampling a few positions inside each
  match (``step = match_len // 4``) into the table.  It is the executable
  specification and the recorded pre-optimization baseline.
* :func:`compress` — a numpy event-driven kernel producing **byte-identical
  output** to :func:`compress_ref`.  Candidate positions are precomputed
  as hash-chain events; the interior positions the reference scanner does
  *not* insert ("holes") are tracked so chain walk-back reproduces the
  reference hash-table state exactly.  Hash-collision positions that could
  only match via a walk past a hole are precomputed as suspect events
  using a second (same-word) chain.
* :func:`compress_dense` — the runtime data-path kernel.  It uses the
  *dense* table policy (every position is inserted, i.e. the reference
  scanner with its interior sampling step forced to 1), which removes
  holes entirely: the candidate for any position is simply its hash-chain
  predecessor, so match selection becomes iteration of a precomputed jump
  function and runs several times faster than the sampled parse.  Output
  is byte-identical to :func:`compress_dense_ref` (the step-1 scalar
  scanner) and decodes with the same :func:`decompress`; the compression
  factor is within a few percent of the sampled parse either way.

Format rules enforced (and property-tested):

* every sequence is ``[token][literal-len*][literals][offset(2, LE)]
  [match-len*]``; match length is stored minus the 4-byte minimum,
* the final sequence is literals-only,
* the last 5 bytes of the block are always literals and no match may start
  within the last 12 bytes (mfLimit) — blocks shorter than 13 bytes are
  stored as pure literals,
* offsets are in ``[1, 65535]``.

All entry points accept any C-contiguous buffer (``bytes``, ``bytearray``,
``memoryview``, numpy arrays) without copying.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

__all__ = [
    "compress",
    "compress_ref",
    "compress_dense",
    "compress_dense_ref",
    "decompress",
    "LZ4DecodeError",
    "MIN_MATCH",
    "MF_LIMIT",
]

MIN_MATCH = 4
#: No match may begin within this many bytes of the end of the block.
MF_LIMIT = 12
#: The final literal run must cover at least this many bytes.
LAST_LITERALS = 5

_HASH_LOG = 16
_HASH_MASK = (1 << _HASH_LOG) - 1
_MAX_OFFSET = 65535
#: Below this size the scalar reference scanners beat numpy setup costs.
_VECTOR_MIN = 2048
_STOP = 1 << 30


class LZ4DecodeError(ValueError):
    """Raised when a block does not decode as valid LZ4."""


def _hash32(word: int) -> int:
    """Fibonacci hash of a 32-bit little-endian word to _HASH_LOG bits."""
    return ((word * 2654435761) >> (32 - _HASH_LOG)) & _HASH_MASK


def _as_buffer(data) -> bytes | memoryview:
    """View ``data`` as an indexable byte buffer without copying."""
    if isinstance(data, bytes):
        return data
    mv = memoryview(data)
    if mv.ndim != 1 or mv.itemsize != 1:
        mv = mv.cast("B")
    return mv


# ---------------------------------------------------------------------------
# Scalar reference scanners (executable specs + benchmark baselines)
# ---------------------------------------------------------------------------


def _compress_scalar(src, table_step_one: bool) -> bytes:
    """The original greedy scanner; ``table_step_one`` selects the dense
    (insert-every-position) table policy instead of the sampled one."""
    n = len(src)
    out = bytearray()
    if n == 0:
        return b"\x00"  # single empty-literal token
    if n < MF_LIMIT + 1:
        _emit_last_literals(out, src, 0, n)
        return bytes(out)

    # Hash table: position of the most recent occurrence of each 4-byte
    # prefix hash.  -1 = empty.
    table = [-1] * (1 << _HASH_LOG)
    match_limit = n - LAST_LITERALS
    search_limit = n - MF_LIMIT

    anchor = 0  # start of the pending literal run
    i = 0
    while i < search_limit:
        word = int.from_bytes(src[i : i + 4], "little")
        h = _hash32(word)
        cand = table[h]
        table[h] = i
        if (
            cand < 0
            or i - cand > _MAX_OFFSET
            or src[cand : cand + 4] != src[i : i + 4]
        ):
            i += 1
            continue
        # Extend the match forward as far as allowed.
        m = i + MIN_MATCH
        c = cand + MIN_MATCH
        while m < match_limit and src[m] == src[c]:
            m += 1
            c += 1
        match_len = m - i
        _emit_sequence(out, src, anchor, i, i - cand, match_len)
        # Index positions inside the match to improve the next search.
        step_end = min(m, search_limit)
        step = 1 if table_step_one else max(1, match_len // 4)
        for j in range(i + 1, step_end, step):
            w = int.from_bytes(src[j : j + 4], "little")
            table[_hash32(w)] = j
        i = m
        anchor = m
    _emit_last_literals(out, src, anchor, n)
    return bytes(out)


def compress_ref(data) -> bytes:
    """Pure-Python sampled-table compressor (the pre-optimization baseline).

    :func:`compress` is byte-identical to this function.
    """
    return _compress_scalar(_as_buffer(data), table_step_one=False)


def compress_dense_ref(data) -> bytes:
    """Pure-Python dense-table compressor (sampling step forced to 1).

    :func:`compress_dense` is byte-identical to this function.
    """
    return _compress_scalar(_as_buffer(data), table_step_one=True)


def _emit_length(out: bytearray, length: int) -> None:
    """Emit the 255-run extension bytes for a length >= 15."""
    length -= 15
    while length >= 255:
        out.append(255)
        length -= 255
    out.append(length)


def _emit_sequence(
    out: bytearray, src, anchor: int, i: int, offset: int, match_len: int
) -> None:
    """Emit one literal-run + match sequence."""
    lit_len = i - anchor
    ml = match_len - MIN_MATCH
    token = (min(lit_len, 15) << 4) | min(ml, 15)
    out.append(token)
    if lit_len >= 15:
        _emit_length(out, lit_len)
    out += src[anchor:i]
    out += offset.to_bytes(2, "little")
    if ml >= 15:
        _emit_length(out, ml)


def _emit_last_literals(out: bytearray, src, anchor: int, end: int) -> None:
    """Emit the final literals-only sequence."""
    lit_len = end - anchor
    out.append(min(lit_len, 15) << 4)
    if lit_len >= 15:
        _emit_length(out, lit_len)
    out += src[anchor:end]


# ---------------------------------------------------------------------------
# Shared vectorized plumbing
# ---------------------------------------------------------------------------


def _words_and_hashes(src, n: int, L: int):
    """Little-endian 4-byte words at each position, and their table hashes.

    The word array is a single unaligned strided copy out of the source
    buffer (4x cheaper than building it from shifted uint32 casts), and
    the hash multiply wraps in uint32 like the reference C arithmetic, so
    no uint64 round-trip is needed.
    """
    w = np.ascontiguousarray(np.ndarray((n - 3,), "<u4", buffer=src, strides=(1,)))
    wL = w[:L]
    h = ((wL * np.uint32(2654435761)) >> np.uint32(16)).astype(np.uint16)
    return w, wL, h


def _hash_chains(h: np.ndarray, L: int) -> np.ndarray:
    """prev[t] = most recent position < t with the same hash, else -1."""
    order = np.argsort(h, kind="stable").astype(np.int32)
    hs = h[order]
    si = np.flatnonzero(hs[1:] == hs[:-1])
    prev = np.full(L, -1, np.int32)
    prev[order[si + 1]] = order[si]
    return prev


def _word_chains(wL: np.ndarray, L: int) -> np.ndarray:
    """prevw[t] = most recent position < t with the same 4-byte word.

    A stable uint32 argsort via two 16-bit radix passes — numpy's stable
    sort on uint32 falls back to mergesort, which is far slower.
    """
    lo = (wL & 0xFFFF).astype(np.uint16)
    hi = (wL >> 16).astype(np.uint16)
    s1 = np.argsort(lo, kind="stable")
    order = s1[np.argsort(hi[s1], kind="stable")].astype(np.int32)
    on, op = order[1:], order[:-1]
    same = wL[on] == wL[op]
    prevw = np.full(L, -1, np.int32)
    prevw[on[same]] = op[same]
    return prevw


def _next_event_index(E: np.ndarray, NE: int, L: int) -> np.ndarray:
    """nxt[x] = index into E of the first event >= x (NE if none)."""
    tmp = np.full(L + 1, NE, np.int32)
    tmp[E] = np.arange(NE, dtype=np.int32)
    return np.minimum.accumulate(tmp[::-1])[::-1]


def _extend_match(src, e: int, q: int, match_limit: int) -> int:
    """Length of the greedy match at ``e`` against candidate ``q``."""
    m = e + MIN_MATCH
    c = q + MIN_MATCH
    if m + 8 <= match_limit and src[m : m + 8] == src[c : c + 8]:
        m += 8
        c += 8
        step = 16
        while m < match_limit:
            k = match_limit - m
            if k > step:
                k = step
            if src[m : m + k] == src[c : c + k]:
                m += k
                c += k
                if step < 65536:
                    step <<= 1
                continue
            while src[m] == src[c]:
                m += 1
                c += 1
            break
    else:
        while m < match_limit and src[m] == src[c]:
            m += 1
            c += 1
    return m - e


def _emit_batch(arr: np.ndarray, seq: np.ndarray) -> bytearray:
    """Serialize sequences ``(anchor, pos, offset, match_len)`` to LZ4.

    The whole record layout (tokens, offsets, literal copies) is computed
    with numpy; only the rare >=15 length-extension records fall back to a
    per-row patch loop.
    """
    A, E, O, ML = seq[:, 0], seq[:, 1], seq[:, 2], seq[:, 3]
    K = len(A)
    lit = E - A
    mlm = ML - MIN_MATCH
    lit_ext = np.where(lit >= 15, (lit - 15) // 255 + 1, 0)
    ml_ext = np.where(mlm >= 15, (mlm - 15) // 255 + 1, 0)
    rec = 1 + lit_ext + lit + 2 + ml_ext
    roff = np.empty(K, np.int64)
    roff[0] = 0
    np.cumsum(rec[:-1], out=roff[1:])
    total = int(roff[-1] + rec[-1])
    outb = np.zeros(total, np.uint8)
    outb[roff] = (np.minimum(lit, 15) << 4) | np.minimum(mlm, 15)
    lit_start = roff + 1 + lit_ext
    offpos = lit_start + lit
    outb[offpos] = O & 0xFF
    outb[offpos + 1] = O >> 8
    total_lit = int(lit.sum())
    if total_lit:
        sid = np.repeat(np.arange(K), lit)
        base = np.empty(K, np.int64)
        base[0] = 0
        np.cumsum(lit[:-1], out=base[1:])
        within = np.arange(total_lit) - base[sid]
        outb[lit_start[sid] + within] = arr[A[sid] + within]
    for s in np.flatnonzero((lit_ext > 0) | (ml_ext > 0)).tolist():
        run = int(lit[s])
        if run >= 15:
            _patch_length(outb, int(roff[s]) + 1, run - 15)
        run = int(mlm[s])
        if run >= 15:
            _patch_length(outb, int(offpos[s]) + 2, run - 15)
    return bytearray(outb)


def _patch_length(outb: np.ndarray, at: int, rest: int) -> None:
    k = rest // 255
    if k:
        outb[at : at + k] = 255
    outb[at + k] = rest - 255 * k


# ---------------------------------------------------------------------------
# compress: byte-identical vectorized kernel (sampled-table parse)
# ---------------------------------------------------------------------------


def compress(data) -> bytes:
    """Compress ``data`` into an LZ4 block (byte-identical to
    :func:`compress_ref`).

    Worst case output is ``len(data) + len(data)//255 + 16`` bytes
    (incompressible input costs the literal-length extensions only).
    """
    src = _as_buffer(data)
    if len(src) < _VECTOR_MIN:
        return _compress_scalar(src, table_step_one=False)
    return _compress_vector(src)


def _compress_vector(src) -> bytes:
    n = len(src)
    L = n - MF_LIMIT
    match_limit = n - LAST_LITERALS

    arr = np.frombuffer(src, np.uint8)
    w, wL, h = _words_and_hashes(src, n, L)
    prev_np = _hash_chains(h, L)

    # Candidate events: positions whose hash-chain predecessor is in
    # offset range.  "valid" events word-match that predecessor; the rest
    # are hash collisions that can only become matches if the predecessor
    # is a hole at scan time and the walk-back lands on a same-word
    # position — which requires a same-word predecessor in offset range,
    # so everything else is discarded up front.
    idx = np.flatnonzero(prev_np >= 0).astype(np.int32)
    pv = prev_np[idx]
    near = (idx - pv) <= _MAX_OFFSET
    idx = idx[near]
    pv = pv[near]
    wmatch = wL[pv] == wL[idx]
    valid_idx = idx[wmatch]
    col_idx = idx[~wmatch]
    if col_idx.size:
        prevw = _word_chains(wL, L)
        pw = prevw[col_idx]
        sus_idx = col_idx[(pw >= 0) & ((col_idx - pw) <= _MAX_OFFSET)]
    else:
        sus_idx = col_idx

    evmask = np.zeros(L, bool)
    evmask[valid_idx] = True
    evmask[sus_idx] = True
    E_np = np.flatnonzero(evmask).astype(np.int32)
    NE = len(E_np)
    isval_np = np.zeros(L, np.uint8)
    isval_np[valid_idx] = 1
    nxt_np = _next_event_index(E_np, NE, L)

    EV = memoryview(E_np)
    nxt = memoryview(nxt_np)
    prev = memoryview(prev_np)
    isval = memoryview(isval_np)
    hole_np = np.zeros(L, np.uint8)
    ishole = memoryview(hole_np)
    wv = memoryview(w)

    seqs: list[int] = []
    anchor = 0
    vk = 0
    while vk < NE:
        e = EV[vk]
        vk += 1
        p = prev[e]
        if ishole[p]:
            # The reference table no longer points at p: walk the chain
            # back to the most recent *inserted* position.
            q = p
            while q >= 0 and ishole[q]:
                q = prev[q]
            if q < 0 or e - q > _MAX_OFFSET or wv[q] != wv[e]:
                continue
        elif isval[e]:
            q = p
        else:
            continue
        match_len = _extend_match(src, e, q, match_limit)
        m = e + match_len
        seqs += (anchor, e, e - q, match_len)
        anchor = m
        # Positions the reference scanner does NOT insert become holes.
        if match_len >= 8:
            se = m if m < L else L
            if se > e + 1:
                if se - e <= 48:
                    j = e + 1
                    while j < se:
                        ishole[j] = 1
                        j += 1
                else:
                    hole_np[e + 1 : se] = 1
                for j in range(e + 1, se, match_len >> 2):
                    ishole[j] = 0
        vk = nxt[m] if m < L else NE

    if seqs:
        out = _emit_batch(arr, np.array(seqs, np.int64).reshape(-1, 4))
    else:
        out = bytearray()
    _emit_last_literals(out, src, anchor, n)
    return bytes(out)


# ---------------------------------------------------------------------------
# compress_dense: the runtime data-path kernel (dense-table parse)
# ---------------------------------------------------------------------------


def compress_dense(data) -> bytes:
    """Compress ``data`` with the dense-table parse (byte-identical to
    :func:`compress_dense_ref`, same block format, same decoder).

    This is the checkpoint runtime's hot-path kernel: with every position
    indexed there are no table holes, so the candidate for any position is
    a precomputable array lookup and selection reduces to iterating a jump
    function.
    """
    src = _as_buffer(data)
    if len(src) < _VECTOR_MIN:
        return _compress_scalar(src, table_step_one=True)
    return _compress_dense_vector(src)


def _compress_dense_vector(src) -> bytes:
    n = len(src)
    L = n - MF_LIMIT
    match_limit = n - LAST_LITERALS
    wlen = n - 3

    arr = np.frombuffer(src, np.uint8)
    w, wL, h = _words_and_hashes(src, n, L)
    prev_np = _hash_chains(h, L)

    pos = np.arange(L, dtype=np.int32)
    pc = np.maximum(prev_np, 0)
    valid = (prev_np >= 0) & ((pos - prev_np) <= _MAX_OFFSET) & (w[pc] == wL)

    # Match length per event: > 0 exact, -1 resolve scalar on demand (only
    # if the orbit actually selects the event).  Round 0 compares the words
    # 4 bytes into every match at once — the event side is a plain shifted
    # view, so the only gather is the candidate side.  Any match shorter
    # than 8 bytes (the common case) is resolved here with no per-event
    # bookkeeping at all.
    ml0 = np.full(L, -1, np.int32)
    y = w[4 : 4 + L] ^ w[pc + 4]
    eqz = y == 0
    tail = ((y & 0xFF) == 0).view(np.int8) + ((y & 0xFFFF) == 0).view(np.int8)
    tail += ((y & 0xFFFFFF) == 0).view(np.int8)
    np.copyto(ml0, tail.astype(np.int32) + MIN_MATCH, where=valid & ~eqz)

    # Survivors matched 8+ bytes.  When most events survive the payload is
    # run-dominated (zero pages, constant blocks): very few matches will
    # be selected, so skip the remaining rounds and let those extend
    # scalar.  Otherwise refine twice more (resolving ml <= 15 exactly).
    alive = valid & eqz
    na = int(np.count_nonzero(alive))
    if na and na * 5 < 3 * L:
        se = np.flatnonzero(alive).astype(np.int32)
        sq = prev_np[se]
        acc = np.full(len(se), 8, np.int32)
        d = 8
        for _ in range(2):
            okm = se + d + 4 <= wlen
            if not okm.all():
                ki = np.flatnonzero(okm)
                se, sq, acc = se[ki], sq[ki], acc[ki]
            if not len(se):
                break
            y = w[se + d] ^ w[sq + d]
            mi = np.flatnonzero(y)
            if len(mi):
                ym = y[mi]
                tl = ((ym & 0xFF) == 0).view(np.int8) + ((ym & 0xFFFF) == 0).view(
                    np.int8
                )
                tl += ((ym & 0xFFFFFF) == 0).view(np.int8)
                de = se[mi]
                ml0[de] = np.minimum(acc[mi] + tl, match_limit - de)
            si = np.flatnonzero(y == 0)
            se, sq, acc = se[si], sq[si], acc[si] + 4
            d += 4

    # Next-event table: first candidate position >= x (or _STOP).
    nxt_np = pos.copy()
    np.copyto(nxt_np, np.int32(_STOP), where=~valid)
    nxt_np = np.ascontiguousarray(np.minimum.accumulate(nxt_np[::-1])[::-1])

    # Orbit walk: each anchor jumps to the next event and past its match.
    nxt = memoryview(nxt_np)
    mlv = memoryview(ml0)
    prevv = memoryview(prev_np)
    xs: list[int] = []
    xsap = xs.append
    big_ml: list[int] = []
    x = 0
    while x < L:
        e = nxt[x]
        if e >= _STOP:
            break
        ml = mlv[e]
        if ml < 0:
            ml = _extend_match(src, e, prevv[e], match_limit)
            big_ml.append(ml)
        xsap(x)
        x = e + ml

    anchor = 0
    if xs:
        K = len(xs)
        X = np.fromiter(xs, np.int64, K)
        E_sel = nxt_np[X].astype(np.int64)
        O = E_sel - prev_np[E_sel]
        ML = ml0[E_sel].astype(np.int64)
        bad = np.flatnonzero(ML < 0)
        if len(bad):
            ML[bad] = np.asarray(big_ml, np.int64)
        out = _emit_batch(arr, np.stack([X, E_sel, O, ML], axis=1))
        anchor = int(E_sel[-1] + ML[-1])
    else:
        out = bytearray()
    _emit_last_literals(out, src, anchor, n)
    return bytes(out)


# ---------------------------------------------------------------------------
# decompress
# ---------------------------------------------------------------------------


def decompress(block, expected_size: int | None = None) -> bytes:
    """Decode an LZ4 block; optionally verify the decoded size.

    Raises :class:`LZ4DecodeError` on malformed input (truncated
    sequences, zero/overlarge offsets, or a size mismatch).
    """
    src = _as_buffer(block)
    n = len(src)
    out = bytearray()
    i = 0
    if n == 0:
        raise LZ4DecodeError("empty input is not a valid LZ4 block")
    while True:
        if i >= n:
            raise LZ4DecodeError("truncated block: missing token")
        token = src[i]
        i += 1
        lit_len = token >> 4
        if lit_len == 15:
            lit_len, i = _read_length(src, i, lit_len)
        if i + lit_len > n:
            raise LZ4DecodeError("truncated block: literals run past end")
        out += src[i : i + lit_len]
        i += lit_len
        if i == n:
            # Final literals-only sequence.
            break
        if i + 2 > n:
            raise LZ4DecodeError("truncated block: missing match offset")
        offset = src[i] | (src[i + 1] << 8)
        i += 2
        if offset == 0:
            raise LZ4DecodeError("invalid zero match offset")
        if offset > len(out):
            raise LZ4DecodeError(
                f"match offset {offset} exceeds decoded length {len(out)}"
            )
        match_len = token & 0xF
        if match_len == 15:
            match_len, i = _read_length(src, i, match_len)
        match_len += MIN_MATCH
        start = len(out) - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            # Overlapping copy (the RLE trick): the source pattern repeats,
            # so multiply it out instead of copying byte by byte.
            pattern = bytes(out[start:])
            reps, rem = divmod(match_len, offset)
            out += pattern * reps
            if rem:
                out += pattern[:rem]
    if expected_size is not None and len(out) != expected_size:
        raise LZ4DecodeError(
            f"decoded size {len(out)} != expected {expected_size}"
        )
    return bytes(out)


def _read_length(src, i: int, base: int) -> tuple[int, int]:
    """Read 255-run extension bytes; returns (length, new_index)."""
    length = base
    while True:
        if i >= len(src):
            raise LZ4DecodeError("truncated block: unterminated length run")
        b = src[i]
        i += 1
        length += b
        if b != 255:
            return length, i
