"""The Section 5 compression study: data, harness, and paper calibration.

Two sources of (compression factor, single-thread speed) feed Table 3 and
the performance model:

* :data:`PAPER_TABLE2` — the paper's published measurements (taken on a
  Core i7-4770HQ against BLCR checkpoints of the Mantevo mini-apps),
  transcribed verbatim.  These drive exact Table 2/3 regeneration and the
  per-mini-app compression factors of Figures 5/6.
* :func:`run_study` — live measurements of the same seven codecs over
  synthetic checkpoint data produced by the mini-app proxy kernels
  (:mod:`repro.workloads`).  Factors track the paper closely because the
  proxies are calibrated against the gzip(1) column; speeds are
  hardware-specific there just as in the paper (its own Section 5
  motivates re-measuring rather than reusing prior studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.units import GB, mb_per_s
from .codecs import Codec, default_codecs
from .measure import Measurement, measure_codec

__all__ = [
    "AppCompressionData",
    "PAPER_TABLE2",
    "PAPER_UTILITY_AVERAGES",
    "paper_factor",
    "paper_speed",
    "StudyResult",
    "run_study",
    "average_by_utility",
    "sizing_inputs",
]


@dataclass(frozen=True)
class AppCompressionData:
    """One mini-app row of Table 2.

    ``measurements`` maps codec name (``"gzip(1)"`` ...) to
    ``(factor, single_thread_speed_Bps)``.
    """

    app: str
    checkpoint_bytes: float
    measurements: dict[str, tuple[float, float]]


def _row(app: str, size_gb: float, *cols: tuple[float, float]) -> AppCompressionData:
    names = ("gzip(1)", "gzip(6)", "bzip2(1)", "bzip2(9)", "xz(1)", "xz(6)", "lz4(1)")
    return AppCompressionData(
        app=app,
        checkpoint_bytes=size_gb * GB,
        measurements={
            n: (f / 100.0, mb_per_s(s)) for n, (f, s) in zip(names, cols)
        },
    )


#: Table 2 of the paper, transcribed: per mini-app, per utility(level),
#: compression factor (fraction) and single-thread speed (B/s).
PAPER_TABLE2: tuple[AppCompressionData, ...] = (
    _row("CoMD", 25.07, (84.2, 153.7), (84.4, 92.3), (85.1, 32.5), (85.0, 30.4), (86.0, 23.5), (86.2, 8.2), (82.8, 658.3)),
    _row("HPCCG", 45.92, (88.4, 150.7), (92.3, 61.6), (92.4, 5.9), (93.6, 4.6), (96.9, 47.5), (98.7, 7.4), (81.6, 447.8)),
    _row("miniFE", 52.31, (71.5, 84.5), (77.6, 24.1), (80.7, 10.7), (82.3, 10.1), (87.6, 18.3), (91.1, 1.6), (54.8, 253.9)),
    _row("miniMD", 23.94, (57.0, 52.2), (58.4, 27.7), (59.1, 10.0), (59.5, 9.2), (63.4, 8.0), (67.9, 2.5), (47.0, 345.3)),
    _row("miniSMAC2D", 28.11, (35.0, 37.3), (35.5, 24.4), (31.4, 6.9), (32.4, 6.0), (47.5, 5.1), (48.8, 2.6), (24.1, 342.7)),
    _row("miniAero", 0.78, (84.3, 138.5), (85.7, 61.2), (86.6, 12.0), (87.1, 8.2), (88.1, 28.4), (92.8, 4.3), (80.5, 567.9)),
    _row("pHPCCG", 46.18, (89.1, 154.0), (89.1, 63.2), (93.1, 6.8), (94.0, 4.8), (94.7, 45.9), (97.3, 7.0), (82.4, 477.7)),
)

#: Table 2's "Average" row: utility -> (factor, single-thread B/s).
PAPER_UTILITY_AVERAGES: dict[str, tuple[float, float]] = {
    "gzip(1)": (0.728, mb_per_s(110.1)),
    "gzip(6)": (0.747, mb_per_s(50.6)),
    "bzip2(1)": (0.755, mb_per_s(12.1)),
    "bzip2(9)": (0.763, mb_per_s(10.5)),
    "xz(1)": (0.806, mb_per_s(25.3)),
    "xz(6)": (0.833, mb_per_s(4.8)),
    "lz4(1)": (0.648, mb_per_s(441.9)),
}


def paper_factor(app: str, codec: str = "gzip(1)") -> float:
    """The paper's compression factor for ``app`` under ``codec``."""
    for row in PAPER_TABLE2:
        if row.app == app:
            return row.measurements[codec][0]
    raise KeyError(f"unknown mini-app {app!r}")


def paper_speed(app: str, codec: str = "gzip(1)") -> float:
    """The paper's single-thread speed (B/s) for ``app`` under ``codec``."""
    for row in PAPER_TABLE2:
        if row.app == app:
            return row.measurements[codec][1]
    raise KeyError(f"unknown mini-app {app!r}")


@dataclass
class StudyResult:
    """Live compression-study output: app -> codec name -> Measurement."""

    results: dict[str, dict[str, Measurement]] = field(default_factory=dict)

    def add(self, app: str, m: Measurement) -> None:
        """Record one measurement."""
        self.results.setdefault(app, {})[m.codec] = m

    def factor(self, app: str, codec: str) -> float:
        """Measured compression factor for an app/codec pair."""
        return self.results[app][codec].factor

    def apps(self) -> list[str]:
        """Apps measured, insertion order."""
        return list(self.results)


def run_study(
    datasets: dict[str, list[bytes]],
    codecs: list[Codec] | None = None,
    verify: bool = True,
) -> StudyResult:
    """Measure every codec over every dataset (live Table 2).

    ``datasets`` maps mini-app name to its checkpoint data chunks —
    typically from
    :func:`repro.workloads.generator.checkpoint_chunks`.
    """
    codecs = default_codecs() if codecs is None else codecs
    out = StudyResult()
    for app, chunks in datasets.items():
        for codec in codecs:
            out.add(app, measure_codec(codec, chunks, verify=verify))
    return out


def average_by_utility(study: StudyResult) -> dict[str, tuple[float, float]]:
    """Per-utility averages of (factor, speed) across apps (Table 2's last row)."""
    sums: dict[str, list[float]] = {}
    for app_results in study.results.values():
        for name, m in app_results.items():
            acc = sums.setdefault(name, [0.0, 0.0, 0.0])
            acc[0] += m.factor
            acc[1] += m.compress_speed
            acc[2] += 1.0
    return {n: (f / c, s / c) for n, (f, s, c) in sums.items()}


def sizing_inputs(
    source: str = "paper", study: StudyResult | None = None
) -> dict[str, tuple[float, float]]:
    """Inputs for :func:`repro.core.ndp_sizing.sizing_table`.

    ``source="paper"`` returns the transcribed Table 2 averages (exact
    Table 3 regeneration); ``source="measured"`` averages a live
    :class:`StudyResult`.
    """
    if source == "paper":
        return dict(PAPER_UTILITY_AVERAGES)
    if source == "measured":
        if study is None:
            raise ValueError("source='measured' requires a StudyResult")
        return average_by_utility(study)
    raise ValueError(f"source must be 'paper' or 'measured': {source!r}")
