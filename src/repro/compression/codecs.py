"""Uniform codec adapters for the compression study (Section 5.1.2).

The paper studies gzip, bzip2, xz and lz4 at the levels listed in
Table 2/3.  Python's :mod:`zlib`, :mod:`bz2` and :mod:`lzma` wrap the same
underlying C libraries as the gzip/bzip2/xz command-line utilities, so the
compression *factors* measured here are the real ones; lz4 comes from our
from-scratch block codec (:mod:`repro.compression.lz4`).

Each adapter is a :class:`Codec` with ``compress``/``decompress`` and a
``name`` matching the paper's ``utility(level)`` notation.
"""

from __future__ import annotations

import bz2
import lzma
import zlib
from dataclasses import dataclass, field
from typing import Callable

from . import lz4

__all__ = [
    "Codec",
    "make_codec",
    "fast_lz4_codec",
    "codec_from_name",
    "PAPER_UTILITIES",
    "default_codecs",
]


@dataclass(frozen=True)
class Codec:
    """One compression utility at one level.

    Attributes
    ----------
    utility:
        Base utility name (``"gzip"``, ``"bzip2"``, ``"xz"``, ``"lz4"``).
    level:
        Compression level (the paper uses the default and level 1 of each
        utility, except lz4 where default == 1).
    """

    utility: str
    level: int
    _compress: Callable[[bytes], bytes] = field(repr=False)
    _decompress: Callable[[bytes], bytes] = field(repr=False)

    @property
    def name(self) -> str:
        """The paper's ``utility(level)`` label, e.g. ``"gzip(1)"``."""
        return f"{self.utility}({self.level})"

    def compress(self, data) -> bytes:
        """Compress ``data``; output is self-describing per the utility.

        Accepts any bytes-like buffer (``bytes``, ``bytearray``,
        ``memoryview``) — every wrapped library consumes the buffer
        protocol directly, so slicing payloads into ``memoryview`` blocks
        upstream costs no copies.
        """
        return self._compress(data)

    def decompress(self, data) -> bytes:
        """Invert :meth:`compress`.  Accepts any bytes-like buffer."""
        return self._decompress(data)

    def factor(self, data) -> float:
        """Paper-defined compression factor ``1 - compressed/original``."""
        if not data:
            raise ValueError("cannot compute a compression factor of empty data")
        return 1.0 - len(self.compress(data)) / len(data)


def make_codec(utility: str, level: int) -> Codec:
    """Construct the adapter for ``utility`` at ``level``.

    >>> make_codec("gzip", 1).name
    'gzip(1)'
    """
    if utility == "gzip":
        return Codec(
            utility,
            level,
            lambda d, lv=level: zlib.compress(d, lv),
            zlib.decompress,
        )
    if utility == "bzip2":
        return Codec(
            utility,
            level,
            lambda d, lv=level: bz2.compress(d, lv),
            bz2.decompress,
        )
    if utility == "xz":
        return Codec(
            utility,
            level,
            lambda d, lv=level: lzma.compress(d, preset=lv),
            lzma.decompress,
        )
    if utility == "lz4":
        if level != 1:
            raise ValueError("the from-scratch lz4 codec implements level 1 only")
        return Codec(utility, level, lz4.compress, lz4.decompress)
    raise ValueError(f"unknown utility: {utility!r}")


def fast_lz4_codec() -> Codec:
    """The checkpoint runtime's lz4 codec: dense-parse compress kernel.

    Same block format, same ``lz4(1)`` label and the same decoder as
    :func:`make_codec`'s lz4 — a stream written by either codec restores
    through :func:`codec_from_name` — but compression runs the
    :func:`repro.compression.lz4.compress_dense` kernel, which is several
    times faster at a near-identical compression factor.  The study
    codecs (:func:`make_codec`) keep the reference-parse kernel so Table
    2/3 factors stay bit-stable.
    """
    return Codec("lz4", 1, lz4.compress_dense, lz4.decompress)


def codec_from_name(name: str) -> Codec:
    """Parse a ``utility(level)`` label back into a codec.

    Inverse of :attr:`Codec.name`; used when restoring checkpoints whose
    context-file header names the codec that compressed them.

    >>> codec_from_name("bzip2(9)").name
    'bzip2(9)'
    """
    if not name.endswith(")") or "(" not in name:
        raise ValueError(f"codec name must look like 'utility(level)': {name!r}")
    utility, _, level = name[:-1].partition("(")
    return make_codec(utility, int(level))


#: The seven utility/level combinations of Tables 2 and 3.
PAPER_UTILITIES: tuple[tuple[str, int], ...] = (
    ("gzip", 1),
    ("gzip", 6),
    ("bzip2", 1),
    ("bzip2", 9),
    ("xz", 1),
    ("xz", 6),
    ("lz4", 1),
)


def default_codecs() -> list[Codec]:
    """All seven paper codecs, in Table 2 column order."""
    return [make_codec(u, lv) for u, lv in PAPER_UTILITIES]
