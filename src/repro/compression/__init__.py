"""Compression substrate: codecs, measurement, the Section 5 study, and
checkpoint delta/dedup encodings.

Real codecs (zlib/bz2/lzma wrap the same C libraries as the paper's
gzip/bzip2/xz; lz4 is implemented from scratch in
:mod:`repro.compression.lz4`) plus the transcribed paper measurements used
for exact Table 2/3 regeneration.
"""

from . import lz4
from .codecs import PAPER_UTILITIES, Codec, codec_from_name, default_codecs, make_codec
from .entropy import (
    CompressibilityReport,
    analyze,
    block_entropy_profile,
    byte_entropy,
    entropy_factor_bound,
)
from .delta import (
    BlockDeduper,
    DedupResult,
    apply_xor_delta,
    xor_delta,
    zero_rle,
    zero_rle_decode,
)
from .measure import Measurement, measure_codec, scale_threads
from .study import (
    PAPER_TABLE2,
    PAPER_UTILITY_AVERAGES,
    AppCompressionData,
    StudyResult,
    average_by_utility,
    paper_factor,
    paper_speed,
    run_study,
    sizing_inputs,
)

__all__ = [
    "lz4",
    "Codec",
    "make_codec",
    "codec_from_name",
    "default_codecs",
    "byte_entropy",
    "entropy_factor_bound",
    "block_entropy_profile",
    "analyze",
    "CompressibilityReport",
    "PAPER_UTILITIES",
    "Measurement",
    "measure_codec",
    "scale_threads",
    "AppCompressionData",
    "PAPER_TABLE2",
    "PAPER_UTILITY_AVERAGES",
    "paper_factor",
    "paper_speed",
    "StudyResult",
    "run_study",
    "average_by_utility",
    "sizing_inputs",
    "xor_delta",
    "apply_xor_delta",
    "zero_rle",
    "zero_rle_decode",
    "BlockDeduper",
    "DedupResult",
]
