"""Cost modeling: what does each C/R configuration cost to build?

The paper's closing arguments are economic — "reduce the cost of the I/O
system by decreasing the peak bandwidth supported", "substitute a 15 GB/s
local storage with a 2 GB/s storage with NDP".  This module turns those
into numbers: a simple component cost model (per-node NVM bandwidth, NDP
cores, and the system-wide parallel file system bandwidth) priced against
the efficiency each configuration achieves, yielding cost-per-delivered-
efficiency and cheapest-configuration-for-a-target answers.

Prices are inputs (defaults are order-of-magnitude placeholders clearly
marked as such); the *structure* — NDP trades a few cheap cores for a lot
of expensive PFS and NVM bandwidth — is the result that matters and is
insensitive to the exact unit prices (tested across a price range).
"""

from __future__ import annotations

from dataclasses import dataclass

from .configs import NDP_GZIP1, CompressionSpec, CRParameters
from .model import ModelResult, multilevel_ndp
from .optimizer import optimal_host

__all__ = ["CostModel", "ConfigurationCost", "price_configuration", "cheapest_for_target"]


@dataclass(frozen=True)
class CostModel:
    """Unit prices for the C/R-relevant components.

    Attributes
    ----------
    nvm_per_gbps:
        Cost of 1 GB/s of node-local NVM bandwidth, $ per node.
    ndp_core:
        Cost of one NDP core, $ per node.
    pfs_per_gbps:
        Cost of 1 GB/s of *system* parallel-file-system bandwidth, $.
    nodes:
        Node count the per-node components multiply over.

    Defaults are placeholders of plausible relative magnitude (PFS
    bandwidth is by far the most expensive resource per GB/s); swap in
    procurement numbers for real studies.
    """

    nvm_per_gbps: float = 150.0
    ndp_core: float = 50.0
    pfs_per_gbps: float = 100_000.0
    nodes: int = 100_000

    def __post_init__(self) -> None:
        if min(self.nvm_per_gbps, self.ndp_core, self.pfs_per_gbps) < 0:
            raise ValueError("prices must be non-negative")
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")


@dataclass(frozen=True)
class ConfigurationCost:
    """A configuration's hardware bill and achieved efficiency.

    ``cost_per_efficiency`` is the headline comparator: total C/R hardware
    dollars per point of delivered progress rate.
    """

    label: str
    efficiency: float
    nvm_cost: float
    ndp_cost: float
    pfs_cost: float

    @property
    def total(self) -> float:
        """Total C/R-attributable hardware cost, $."""
        return self.nvm_cost + self.ndp_cost + self.pfs_cost

    @property
    def cost_per_efficiency(self) -> float:
        """Dollars per percentage point of progress rate."""
        if self.efficiency <= 0:
            return float("inf")
        return self.total / (self.efficiency * 100.0)


def price_configuration(
    label: str,
    params: CRParameters,
    result: ModelResult,
    prices: CostModel,
    ndp_cores: int = 0,
) -> ConfigurationCost:
    """Price the hardware a configuration's parameters imply."""
    nvm = prices.nvm_per_gbps * (params.local_bandwidth / 1e9) * prices.nodes
    ndp = prices.ndp_core * ndp_cores * prices.nodes
    pfs = prices.pfs_per_gbps * (params.io_bandwidth * prices.nodes / 1e9)
    return ConfigurationCost(
        label=label,
        efficiency=result.efficiency,
        nvm_cost=nvm,
        ndp_cost=ndp,
        pfs_cost=pfs,
    )


def cheapest_for_target(
    target: float,
    prices: CostModel,
    base: CRParameters,
    nvm_options_gbps: tuple[float, ...] = (2.0, 5.0, 15.0),
    io_options_mbps: tuple[float, ...] = (25.0, 50.0, 100.0, 200.0, 400.0),
    compression: CompressionSpec = NDP_GZIP1,
    ndp_cores: int = 4,
) -> tuple[ConfigurationCost | None, ConfigurationCost | None]:
    """Cheapest (host, NDP) builds reaching ``target`` efficiency.

    Sweeps the NVM x PFS design grid for both engines; returns None for an
    engine that cannot reach the target anywhere on the grid.
    """
    best_host: ConfigurationCost | None = None
    best_ndp: ConfigurationCost | None = None
    for nvm in nvm_options_gbps:
        for io in io_options_mbps:
            p = base.with_(
                local_bandwidth=nvm * 1e9, io_bandwidth=io * 1e6, local_interval=None
            )
            host = optimal_host(p, compression.with_factor(compression.factor))
            if host.efficiency >= target:
                cost = price_configuration(f"host {nvm}GB/s+{io}MB/s", p, host, prices)
                if best_host is None or cost.total < best_host.total:
                    best_host = cost
            ndp = multilevel_ndp(p, compression)
            if ndp.efficiency >= target:
                cost = price_configuration(
                    f"ndp {nvm}GB/s+{io}MB/s", p, ndp, prices, ndp_cores=ndp_cores
                )
                if best_ndp is None or cost.total < best_ndp.total:
                    best_ndp = cost
    return best_host, best_ndp


def _baseline_comparison(
    params: CRParameters, prices: CostModel
) -> tuple[ConfigurationCost, ConfigurationCost]:
    """The paper's Figure 8/9 substitution, priced: 15 GB/s host+comp vs
    2 GB/s NVM with NDP+compression."""
    p_host = params.with_(local_bandwidth=15e9, local_interval=None)
    host = price_configuration(
        "host: 15 GB/s NVM + compression",
        p_host,
        optimal_host(p_host, NDP_GZIP1),
        prices,
    )
    p_ndp = params.with_(local_bandwidth=2e9, local_interval=None)
    ndp = price_configuration(
        "NDP: 2 GB/s NVM + 4 cores + compression",
        p_ndp,
        multilevel_ndp(p_ndp, NDP_GZIP1),
        prices,
        ndp_cores=4,
    )
    return host, ndp
