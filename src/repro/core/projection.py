"""Exascale system projection (Section 3 / Table 1 of the paper).

The paper projects an exascale machine by scaling the Titan Cray XK7.  This
module encodes that scaling study as executable arithmetic so Table 1 and
the derived C/R parameters of Sections 3.2–3.4 can be regenerated (and the
assumptions varied).

Three layers:

* :class:`MachineSpec` — a concrete machine description (Titan, or the
  projected exascale system).
* :func:`project_exascale` — the paper's scaling rules applied to a base
  machine.
* :func:`mtti_from_socket_mttf` — Section 3.2's MTTI projection from a
  per-socket mean time to failure.
* :class:`CheckpointRequirements` — Section 3.3's derived commit-time /
  bandwidth requirements for a target progress rate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from . import daly
from .units import GB, MINUTE, PB, TB, YEAR, gb, gb_per_s, minutes, tb_per_s

__all__ = [
    "MachineSpec",
    "TITAN",
    "EXASCALE",
    "project_exascale",
    "mtti_from_socket_mttf",
    "CheckpointRequirements",
    "checkpoint_requirements",
    "projection_table",
]


@dataclass(frozen=True)
class MachineSpec:
    """A machine description sufficient for the paper's C/R analysis.

    Attributes
    ----------
    name:
        Human-readable machine name.
    node_count:
        Number of compute nodes.
    node_peak_flops:
        Peak floating-point rate of one node (flop/s).
    node_memory_bytes:
        Physical memory per node (bytes).
    interconnect_bw:
        Per-node injection bandwidth into the system interconnect (B/s).
    io_bandwidth:
        *Aggregate* system bandwidth to the global (parallel file system)
        I/O tier (B/s).
    system_mtti:
        System mean time to interrupt (seconds).
    """

    name: str
    node_count: int
    node_peak_flops: float
    node_memory_bytes: float
    interconnect_bw: float
    io_bandwidth: float
    system_mtti: float

    @property
    def system_peak_flops(self) -> float:
        """Aggregate peak performance (flop/s)."""
        return self.node_count * self.node_peak_flops

    @property
    def system_memory_bytes(self) -> float:
        """Aggregate physical memory (bytes)."""
        return self.node_count * self.node_memory_bytes

    @property
    def io_bandwidth_per_node(self) -> float:
        """Effective share of global I/O bandwidth per compute node (B/s).

        The paper's 10 TB/s system over 100k nodes gives 100 MB/s per node,
        the number that drives every I/O-level overhead in the model.
        """
        return self.io_bandwidth / self.node_count

    def checkpoint_size(self, memory_fraction: float = 0.8) -> float:
        """Per-node checkpoint size at a given checkpointed-memory fraction.

        The paper assumes 80% of physical memory is checkpointed
        (112 GB/node on the projected system).
        """
        if not 0.0 < memory_fraction <= 1.0:
            raise ValueError("memory_fraction must be in (0, 1]")
        return self.node_memory_bytes * memory_fraction


#: Titan Cray XK7 as described in Section 3.1 / Table 1.  18,688 nodes of
#: 16-core Opteron + K20X GPU; 32 GB CPU + 6 GB GPU memory; 1.44 Tflop/s
#: peak per node; 1000 GB/s file-system bandwidth; 9 failures/day => MTTI
#: of 160 minutes.
TITAN = MachineSpec(
    name="Titan Cray XK7",
    node_count=18_688,
    node_peak_flops=1.44e12,
    node_memory_bytes=gb(38),
    interconnect_bw=gb_per_s(20),
    io_bandwidth=gb_per_s(1000),
    system_mtti=minutes(160),
)


def mtti_from_socket_mttf(
    node_count: int,
    socket_mttf: float = 5 * YEAR,
    round_to: float | None = None,
) -> float:
    """Section 3.2: system MTTI from a per-socket MTTF.

    With independent exponential node failures, the system MTTI is the
    per-node MTTF divided by the node count.  A 5-year socket MTTF over
    100k nodes gives ~26.28 minutes; the paper then rounds optimistically
    to 30 minutes (pass ``round_to=minutes(30)`` for that behaviour —
    rounding *up* only, the paper errs optimistic).
    """
    if node_count <= 0:
        raise ValueError("node_count must be positive")
    mtti = socket_mttf / node_count
    if round_to is not None and round_to > mtti:
        mtti = round_to
    return mtti


def project_exascale(
    base: MachineSpec = TITAN,
    target_flops: float = 1e18,
    node_perf_scale: float = 10e12 / 1.44e12,
    cpu_cores: int = 64,
    memory_per_core: float = gb(2),
    gpu_memory: float = gb(12),
    interconnect_bw: float = gb_per_s(50),
    io_bandwidth: float = tb_per_s(10),
    socket_mttf: float = 5 * YEAR,
    mtti_round_to: float | None = minutes(30),
) -> MachineSpec:
    """Apply the paper's Section 3.1 scaling rules to a base machine.

    The recipe: scale per-node performance ~7x (to 10 Tflop/s), grow CPU
    memory with core count at 2 GB/core, double GPU memory, and make up the
    remaining performance with more nodes (rounding to the paper's round
    100,000).  Interconnect and I/O bandwidths are set from cited
    projections rather than scaled.  MTTI comes from
    :func:`mtti_from_socket_mttf`.
    """
    node_peak = base.node_peak_flops * node_perf_scale
    # Node count needed for the flops target, rounded to the nearest
    # 10,000 as the paper does (537 * 186.88 -> "100,000 compute nodes").
    raw_nodes = target_flops / node_peak
    node_count = int(round(raw_nodes, -4)) or int(raw_nodes)
    node_memory = cpu_cores * memory_per_core + gpu_memory
    return MachineSpec(
        name="Projected exascale (Titan-scaled)",
        node_count=node_count,
        node_peak_flops=node_peak,
        node_memory_bytes=node_memory,
        interconnect_bw=interconnect_bw,
        io_bandwidth=io_bandwidth,
        system_mtti=mtti_from_socket_mttf(node_count, socket_mttf, mtti_round_to),
    )


#: The paper's projected exascale system (Table 1, right column).
EXASCALE = project_exascale()


@dataclass(frozen=True)
class CheckpointRequirements:
    """Section 3.3's derived requirements for a target progress rate.

    Attributes
    ----------
    target_efficiency:
        The target progress rate (paper uses 0.9 throughout).
    commit_time:
        Required checkpoint commit (and restore) time, seconds.
    checkpoint_period:
        Optimal checkpoint period (interval + commit), seconds.
    node_bandwidth:
        Required per-node checkpoint commit bandwidth, B/s.
    system_bandwidth:
        Aggregate commit bandwidth over all nodes, B/s.
    checkpoint_size:
        Per-node checkpoint size used in the derivation, bytes.
    """

    target_efficiency: float
    commit_time: float
    checkpoint_period: float
    node_bandwidth: float
    system_bandwidth: float
    checkpoint_size: float


def checkpoint_requirements(
    machine: MachineSpec = EXASCALE,
    target_efficiency: float = 0.9,
    memory_fraction: float = 0.8,
) -> CheckpointRequirements:
    """Derive Section 3.3's numbers: commit time ~M/200, period ~M/10.

    For the paper's projected system (M = 30 min, 112 GB/node) this yields
    a ~9 s commit time, a ~3 min period, ~12.4 GB/s per node and ~1.24 PB/s
    aggregate — far outpacing the projected 10 TB/s global I/O, which is
    the motivation for multilevel checkpointing.
    """
    size = machine.checkpoint_size(memory_fraction)
    delta = daly.required_delta_for_efficiency(target_efficiency, machine.system_mtti)
    tau = float(daly.daly_interval(delta, machine.system_mtti))
    return CheckpointRequirements(
        target_efficiency=target_efficiency,
        commit_time=delta,
        checkpoint_period=tau + delta,
        node_bandwidth=size / delta,
        system_bandwidth=size / delta * machine.node_count,
        checkpoint_size=size,
    )


def projection_table(
    base: MachineSpec = TITAN, projected: MachineSpec = EXASCALE
) -> list[dict[str, object]]:
    """Table 1 as structured rows: parameter, base, projection, factor.

    Factors are reported the way the paper prints them (MTTI as an inverse
    factor ``(1/x)x`` is returned as the plain ratio here; the bench
    formats it).
    """

    def row(name: str, b: float, p: float, unit: float, label: str) -> dict[str, object]:
        return {
            "parameter": name,
            "base": b / unit,
            "projected": p / unit,
            "factor": p / b,
            "unit": label,
        }

    return [
        row("Node Count", base.node_count, projected.node_count, 1, "nodes"),
        row("System Peak", base.system_peak_flops, projected.system_peak_flops, 1e15, "Pflop/s"),
        row("Node Peak", base.node_peak_flops, projected.node_peak_flops, 1e12, "Tflop/s"),
        row("System Memory", base.system_memory_bytes, projected.system_memory_bytes, PB, "PB"),
        row("Node Memory", base.node_memory_bytes, projected.node_memory_bytes, GB, "GB"),
        row("Interconnect BW", base.interconnect_bw, projected.interconnect_bw, GB, "GB/s"),
        row("I/O Bandwidth", base.io_bandwidth, projected.io_bandwidth, TB, "TB/s"),
        row("System MTTI", base.system_mtti, projected.system_mtti, MINUTE, "min"),
    ]


def with_mtti(machine: MachineSpec, mtti: float) -> MachineSpec:
    """A copy of ``machine`` with a different system MTTI (sensitivity)."""
    return replace(machine, system_mtti=mtti)
