"""Execution-time breakdown into the paper's four overhead components.

Section 6.2 decomposes total execution time into *compute*, *checkpoint*,
*restore* and *rerun* time; Figures 4 and 7 further split the last three by
storage level (local vs global I/O).  :class:`OverheadBreakdown` is that
seven-way decomposition, expressed as fractions of total wall time, and is
the common currency returned by every model configuration and by the
discrete-event simulator's statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["OverheadBreakdown"]

_COMPONENTS = (
    "compute",
    "checkpoint_local",
    "checkpoint_io",
    "restore_local",
    "restore_io",
    "rerun_local",
    "rerun_io",
)


@dataclass(frozen=True)
class OverheadBreakdown:
    """Fractions of total wall time spent in each activity.

    All fields are in ``[0, 1]`` and sum to 1 (up to float rounding).
    ``compute`` is the paper's *progress rate* / efficiency.

    Attributes
    ----------
    compute:
        Useful application work.
    checkpoint_local:
        Host blocked writing checkpoints to node-local NVM.
    checkpoint_io:
        Host blocked writing (possibly compressed) checkpoints to global
        I/O.  Zero by construction for NDP configurations.
    restore_local:
        Reading checkpoints back from local/partner storage after failures.
    restore_io:
        Retrieving (and decompressing) checkpoints from global I/O.
    rerun_local:
        Re-executing work lost since the last local checkpoint.
    rerun_io:
        Re-executing work lost since the last I/O-saved checkpoint.
    """

    compute: float
    checkpoint_local: float = 0.0
    checkpoint_io: float = 0.0
    restore_local: float = 0.0
    restore_io: float = 0.0
    rerun_local: float = 0.0
    rerun_io: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            v = getattr(self, f.name)
            if not -1e-9 <= v <= 1.0 + 1e-9:
                raise ValueError(f"{f.name} fraction out of [0, 1]: {v}")

    @property
    def efficiency(self) -> float:
        """Alias: the compute fraction is the progress rate."""
        return self.compute

    @property
    def checkpoint(self) -> float:
        """Total checkpoint time fraction (both levels)."""
        return self.checkpoint_local + self.checkpoint_io

    @property
    def restore(self) -> float:
        """Total restore time fraction (both levels)."""
        return self.restore_local + self.restore_io

    @property
    def rerun(self) -> float:
        """Total rerun (lost-work re-execution) fraction (both levels)."""
        return self.rerun_local + self.rerun_io

    @property
    def overhead(self) -> float:
        """Total C/R overhead fraction (everything but compute)."""
        return 1.0 - self.compute

    @property
    def total(self) -> float:
        """Sum of all components; 1.0 for a consistent breakdown."""
        return sum(getattr(self, name) for name in _COMPONENTS)

    def normalized_to_compute(self) -> dict[str, float]:
        """Components expressed relative to compute time (Fig. 4a / 7-left).

        The paper's left-hand plots normalize execution time to compute
        time, so compute is exactly 1 and overheads are slowdown terms.
        """
        if self.compute <= 0:
            raise ValueError("cannot normalize: compute fraction is zero")
        return {name: getattr(self, name) / self.compute for name in _COMPONENTS}

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (fractions of total time, Fig. 4b / 7-right)."""
        return {name: getattr(self, name) for name in _COMPONENTS}

    def scaled_to(self, wall_time: float) -> dict[str, float]:
        """Absolute seconds spent in each component over ``wall_time``."""
        return {name: getattr(self, name) * wall_time for name in _COMPONENTS}

    @staticmethod
    def component_names() -> tuple[str, ...]:
        """Ordered component names, as used across benches and reports."""
        return _COMPONENTS
