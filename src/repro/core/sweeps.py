"""Vectorized parameter sweeps over the multilevel C/R model.

The model functions in :mod:`repro.core.model` evaluate one scenario at a
time, which is what the figure harness needs.  Design-space exploration
(thousands of (MTTI, checkpoint size, bandwidth, factor) combinations)
wants array evaluation: this module re-expresses the NDP and host
multilevel efficiency as pure numpy over broadcastable inputs — identical
math, no Python-level loops — and is property-tested element-for-element
against the scalar model.

Used by the ``figure89-heatmap`` extension experiment, which maps the NDP
advantage over the full (checkpoint size x MTTI) plane rather than the two
1-D slices the paper shows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .configs import NO_COMPRESSION, CompressionSpec
from .daly import daly_interval

__all__ = [
    "SweepGrid",
    "ndp_efficiency_grid",
    "host_efficiency_grid",
    "host_breakdown_grid",
]


@dataclass(frozen=True)
class SweepGrid:
    """Broadcastable scenario arrays for vectorized evaluation.

    Every field accepts a scalar or a numpy array; arrays broadcast
    against each other under normal numpy rules.  Semantics match
    :class:`~repro.core.configs.CRParameters`: ``local_interval=None``
    (the default) selects the Daly-optimal compute interval per element,
    while an explicit value (scalar or array) pins ``tau`` the way a
    fixed ``CRParameters.local_interval`` does — the figure-4/5 harness
    sweeps ratios at the paper's fixed 150 s interval.
    ``restart_overhead`` is the fixed per-recovery overhead added to both
    restore legs (default 0, matching ``CRParameters``).
    """

    mtti: np.ndarray | float
    checkpoint_size: np.ndarray | float
    local_bandwidth: np.ndarray | float
    io_bandwidth: np.ndarray | float
    p_local: np.ndarray | float
    local_interval: np.ndarray | float | None = None
    restart_overhead: np.ndarray | float = 0.0

    def derived(self) -> tuple[np.ndarray, ...]:
        """(mtti, delta_l, tau, cycle, p) as broadcast arrays."""
        mtti = np.asarray(self.mtti, dtype=float)
        size = np.asarray(self.checkpoint_size, dtype=float)
        bw_l = np.asarray(self.local_bandwidth, dtype=float)
        delta_l = size / bw_l
        if self.local_interval is None:
            tau = np.asarray(daly_interval(delta_l, mtti), dtype=float)
        else:
            tau = np.asarray(self.local_interval, dtype=float)
            if np.any(tau <= 0):
                raise ValueError("local_interval must be positive")
        cycle = tau + delta_l
        p = np.asarray(self.p_local, dtype=float)
        return mtti, delta_l, tau, cycle, p


def _io_times(
    grid: SweepGrid, compression: CompressionSpec
) -> tuple[np.ndarray, np.ndarray]:
    """(commit, restore) times for the I/O leg, broadcast."""
    size = np.asarray(grid.checkpoint_size, dtype=float)
    bw_io = np.asarray(grid.io_bandwidth, dtype=float)
    csize = compression.compressed_size(1.0) * size
    commit = np.maximum(csize / bw_io, size / compression.compress_rate)
    restore = np.maximum(csize / bw_io, size / compression.decompress_rate)
    return commit, restore


def ndp_efficiency_grid(
    grid: SweepGrid,
    compression: CompressionSpec = NO_COMPRESSION,
    rerun_accounting: str = "paper",
    pause_during_local: bool = True,
) -> np.ndarray:
    """*Local + I/O-NDP* efficiency over the grid (paper accounting).

    Vectorization of :func:`repro.core.model.multilevel_ndp`: identical
    formulas, with ``ceil`` handling the drain-cadence quantization per
    element.
    """
    mtti, delta_l, tau, cycle, p = grid.derived()
    t_commit, t_restore = _io_times(grid, compression)

    t_drain = t_commit * (cycle / tau) if pause_during_local else t_commit
    n = np.maximum(1, np.ceil(t_drain / cycle - 1e-12))
    io_interval = n * cycle

    rerun_local = cycle / 2.0
    rerun_io = io_interval / 2.0
    if rerun_accounting == "staleness":
        rerun_io = rerun_io + t_commit + delta_l
    elif rerun_accounting != "paper":
        raise ValueError(f"unknown rerun_accounting: {rerun_accounting!r}")

    r0 = np.asarray(grid.restart_overhead, dtype=float)
    restore = p * (delta_l + r0) + (1.0 - p) * (t_restore + r0)
    cost = restore + p * rerun_local + (1.0 - p) * rerun_io
    f = cost / mtti
    k = 1.0 + delta_l / tau
    eff = np.where(f < 1.0, (1.0 - f) / k, 0.0)
    return np.maximum(eff, 0.0)


def host_efficiency_grid(
    grid: SweepGrid,
    ratio: np.ndarray | int,
    compression: CompressionSpec = NO_COMPRESSION,
    rerun_accounting: str = "paper",
) -> np.ndarray:
    """*Local + I/O-Host* efficiency over the grid at the given ratio(s).

    ``ratio`` broadcasts too, so a third axis can sweep it; combine with
    :func:`optimal_host_grid` for per-element optima.
    """
    mtti, delta_l, tau, cycle, p = grid.derived()
    t_commit, t_restore = _io_times(grid, compression)
    n = np.asarray(ratio, dtype=float)
    if np.any(n < 1):
        raise ValueError("ratio must be >= 1")
    period = n * cycle + t_commit

    rerun_local = (n * cycle * (cycle / 2.0) + t_commit * (t_commit / 2.0)) / period
    rerun_io = period / 2.0
    if rerun_accounting == "staleness":
        rerun_io = rerun_io + t_commit + delta_l
    elif rerun_accounting != "paper":
        raise ValueError(f"unknown rerun_accounting: {rerun_accounting!r}")

    r0 = np.asarray(grid.restart_overhead, dtype=float)
    restore = p * (delta_l + r0) + (1.0 - p) * (t_restore + r0)
    cost = restore + p * rerun_local + (1.0 - p) * rerun_io
    f = cost / mtti
    k = 1.0 + delta_l / tau + t_commit / (n * tau)
    eff = np.where(f < 1.0, (1.0 - f) / k, 0.0)
    return np.maximum(eff, 0.0)


def host_breakdown_grid(
    grid: SweepGrid,
    ratio: np.ndarray | int,
    compression: CompressionSpec = NO_COMPRESSION,
    rerun_accounting: str = "paper",
) -> dict[str, np.ndarray]:
    """Seven-way overhead breakdown for *Local + I/O-Host* over the grid.

    Vectorization of :func:`repro.core.model.multilevel_host` including
    the :class:`~repro.core.breakdown.OverheadBreakdown` assembly — the
    arithmetic mirrors the scalar ``_assemble`` operation for operation,
    so each element is bit-identical to the scalar model's breakdown (the
    figure-4 harness relies on that to swap per-ratio model calls for one
    numpy pass).  Returns a dict with the seven component arrays (keys of
    ``OverheadBreakdown.component_names()``) plus ``"efficiency"``, all
    broadcast to the common shape of the grid and ``ratio``.

    Infeasible elements (expected per-failure cost >= MTTI) follow the
    scalar convention: zero compute/checkpoint fractions and the restore/
    rerun terms normalized by the per-failure cost.
    """
    mtti, delta_l, tau, cycle, p = grid.derived()
    t_commit, t_restore = _io_times(grid, compression)
    n = np.asarray(ratio, dtype=float)
    if np.any(n < 1):
        raise ValueError("ratio must be >= 1")
    period = n * cycle + t_commit

    rerun_local = (n * cycle * (cycle / 2.0) + t_commit * (t_commit / 2.0)) / period
    rerun_io = period / 2.0
    if rerun_accounting == "staleness":
        rerun_io = rerun_io + t_commit + delta_l
    elif rerun_accounting != "paper":
        raise ValueError(f"unknown rerun_accounting: {rerun_accounting!r}")

    r0 = np.asarray(grid.restart_overhead, dtype=float)
    restore_local = p * (delta_l + r0)
    restore_io = (1.0 - p) * (t_restore + r0)
    rerun_local = p * rerun_local
    rerun_io = (1.0 - p) * rerun_io

    k = 1.0 + delta_l / tau + t_commit / (n * tau)
    cost = restore_local + restore_io + rerun_local + rerun_io
    f = cost / mtti
    feasible = f < 1.0
    # Mirror _assemble exactly: compute = 1 / (k / (1 - f)), guarded
    # against the infeasible elements where 1 - f is <= 0; there the
    # restore/rerun fractions are normalized by the per-failure cost
    # instead of the MTTI, exactly as the scalar zero-breakdown does.
    with np.errstate(divide="ignore", invalid="ignore"):
        compute = np.where(feasible, 1.0 / (k / (1.0 - f)), 0.0)
    denom = np.where(feasible, mtti, cost)
    out = {
        "efficiency": np.maximum(compute, 0.0),
        "compute": np.maximum(compute, 0.0),
        "checkpoint_local": np.where(feasible, (delta_l / tau) * compute, 0.0),
        "checkpoint_io": np.where(feasible, (t_commit / (n * tau)) * compute, 0.0),
        "restore_local": restore_local / denom,
        "restore_io": restore_io / denom,
        "rerun_local": rerun_local / denom,
        "rerun_io": rerun_io / denom,
    }
    shape = np.broadcast_shapes(*(a.shape for a in out.values()))
    return {key: np.broadcast_to(arr, shape) for key, arr in out.items()}


def optimal_host_grid(
    grid: SweepGrid,
    compression: CompressionSpec = NO_COMPRESSION,
    rerun_accounting: str = "paper",
    max_ratio: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-element optimal host ratio and efficiency.

    Evaluates every integer ratio up to ``max_ratio`` along a new leading
    axis and reduces with ``argmax`` — brute force, but fully vectorized,
    so a 100x100 grid over 512 ratios is a single ~5M-element numpy pass.
    """
    ratios = np.arange(1, max_ratio + 1, dtype=float)
    # Shape: (R, *grid) via broadcasting ratios on a new leading axis.
    # All five grid fields participate in the broadcast: a grid that
    # sweeps only a bandwidth axis must still push the ratio axis in
    # front of it rather than pairing with it elementwise.
    grid_ndim = len(
        np.broadcast_shapes(
            np.shape(grid.mtti),
            np.shape(grid.checkpoint_size),
            np.shape(grid.local_bandwidth),
            np.shape(grid.io_bandwidth),
            np.shape(grid.p_local),
        )
    )
    shaped = ratios.reshape((-1,) + (1,) * grid_ndim)
    effs = host_efficiency_grid(grid, shaped, compression, rerun_accounting)
    best_idx = np.argmax(effs, axis=0)
    best_eff = np.max(effs, axis=0)
    return best_idx + 1, best_eff
