"""Analytic core: Daly model, exascale projection, multilevel C/R model.

This subpackage is the paper's primary contribution — the performance model
of Section 6.1.1 together with the scaling study (Section 3) and the NDP
provisioning analysis (Sections 4.4/5.3) that feed it.
"""

from .breakdown import OverheadBreakdown
from .configs import (
    HOST_GZIP1,
    NDP_GZIP1,
    NO_COMPRESSION,
    CompressionSpec,
    CRParameters,
    paper_parameters,
)
from .economics import CostModel, ConfigurationCost, cheapest_for_target, price_configuration
from .daly import (
    daly_interval,
    efficiency,
    efficiency_vs_m_over_delta,
    expected_wall_time,
    optimal_efficiency,
    required_delta_for_efficiency,
    young_interval,
)
from .model import (
    ModelResult,
    io_only,
    multilevel_host,
    multilevel_ndp,
    ndp_io_interval,
    single_level,
)
from .ndp_sizing import NDPSizing, select_utility, size_ndp, sizing_table
from .optimizer import (
    clear_cache,
    optimal_host,
    optimal_local_interval,
    optimal_ratio,
    sweep_ratio,
)
from .projection import (
    EXASCALE,
    TITAN,
    CheckpointRequirements,
    MachineSpec,
    checkpoint_requirements,
    mtti_from_socket_mttf,
    project_exascale,
    projection_table,
)

__all__ = [
    "OverheadBreakdown",
    "CostModel",
    "ConfigurationCost",
    "price_configuration",
    "cheapest_for_target",
    "CompressionSpec",
    "CRParameters",
    "paper_parameters",
    "NO_COMPRESSION",
    "HOST_GZIP1",
    "NDP_GZIP1",
    "daly_interval",
    "young_interval",
    "efficiency",
    "efficiency_vs_m_over_delta",
    "expected_wall_time",
    "optimal_efficiency",
    "required_delta_for_efficiency",
    "ModelResult",
    "io_only",
    "single_level",
    "multilevel_host",
    "multilevel_ndp",
    "ndp_io_interval",
    "NDPSizing",
    "size_ndp",
    "sizing_table",
    "select_utility",
    "optimal_ratio",
    "optimal_host",
    "optimal_local_interval",
    "sweep_ratio",
    "clear_cache",
    "MachineSpec",
    "TITAN",
    "EXASCALE",
    "project_exascale",
    "projection_table",
    "mtti_from_socket_mttf",
    "CheckpointRequirements",
    "checkpoint_requirements",
]
