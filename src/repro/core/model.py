"""The multilevel checkpoint/restart performance model (Section 6.1.1).

This is the paper's primary contribution rendered as code: an expected-value
model of application execution under C/R that

* models *distinct* bandwidths and frequencies for node-local and global-I/O
  checkpoints (unlike the single-effective-bandwidth model of Ibtesham et
  al. that the paper improves on),
* makes the probability of recovering from locally-saved checkpoints a
  parameter,
* supports checkpoint compression on the I/O leg (host- or NDP-driven), and
* models the NDP configuration, where compressing and writing checkpoints to
  global I/O happens in the background and never blocks the host.

Model structure
---------------
Failures are exponentially distributed with mean ``M``; to first order a
failure therefore strikes at a position uniformly distributed over wall
time.  Execution is periodic with *super-period* ``P``: ``n`` local cycles
(compute ``tau`` + local commit ``delta_L``) followed, in host
configurations, by a blocking I/O commit ``delta_IO``.  Expected
per-failure costs (restore + rerun) are computed exactly over that layout,
and the total expected wall time ``E`` for ``W`` seconds of useful work
solves the fixed point::

    E = W * (1 + delta_L/tau + delta_IO/(n*tau))  +  (E/M) * cost_per_failure

which is linear in ``E``.  When ``cost_per_failure >= M`` the application
makes no forward progress in expectation and the configuration is reported
as infeasible (efficiency 0).

Rerun accounting
----------------
Two accountings for the I/O-level rerun cost are provided (Section 4 of
DESIGN.md):

* ``"paper"`` (default) — rerun after an I/O-level recovery is half the
  spacing between I/O snapshots.  This reproduces the paper's reported
  Rerun-I/O components (e.g. 1.2% / 0.6% in Figure 7).
* ``"staleness"`` — additionally charges the commit/drain lag of the last
  completed I/O checkpoint (its contents are ``delta_IO + delta_L`` old by
  the time it is usable).  This matches the discrete-event simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .breakdown import OverheadBreakdown
from .configs import NO_COMPRESSION, CompressionSpec, CRParameters

__all__ = [
    "ModelResult",
    "single_level",
    "io_only",
    "multilevel_host",
    "multilevel_ndp",
    "ndp_io_interval",
    "RERUN_ACCOUNTINGS",
]

RERUN_ACCOUNTINGS = ("paper", "staleness")


@dataclass(frozen=True)
class ModelResult:
    """Outcome of evaluating one C/R configuration.

    Attributes
    ----------
    config:
        Human-readable configuration label, e.g. ``"Local + I/O-NDP"``.
    efficiency:
        Progress rate = useful work / expected wall time; 0 if infeasible.
    slowdown:
        Expected wall time per unit of useful work (``inf`` if infeasible).
    breakdown:
        Seven-way :class:`OverheadBreakdown` of wall time.
    tau:
        Compute interval between (local) checkpoints used, seconds.
    ratio:
        Locally-saved : I/O-saved checkpoint ratio ``n`` (0 when no
        I/O-level checkpoints are taken).
    io_interval:
        Wall time between consecutive I/O-level checkpoint snapshots,
        seconds (``inf`` when none are taken).
    params, compression:
        Echo of the inputs for report generation.
    """

    config: str
    efficiency: float
    slowdown: float
    breakdown: OverheadBreakdown
    tau: float
    ratio: int
    io_interval: float
    params: CRParameters
    compression: CompressionSpec

    @property
    def feasible(self) -> bool:
        """Whether the configuration makes forward progress in expectation."""
        return self.efficiency > 0.0

    def describe(self) -> str:
        """Multi-line human-readable summary of the result.

        >>> from repro.core import paper_parameters, multilevel_ndp, NDP_GZIP1
        >>> print(multilevel_ndp(paper_parameters(), NDP_GZIP1).describe())
        ... # doctest: +SKIP
        """
        b = self.breakdown
        lines = [
            f"{self.config}",
            f"  progress rate      {self.efficiency:7.1%}"
            + ("" if self.feasible else "  (INFEASIBLE)"),
            f"  local interval     {self.tau:7.1f} s"
            f"  (commit {self.params.local_commit_time:.1f} s)",
        ]
        if self.io_interval != math.inf:
            lines.append(
                f"  I/O checkpoint     every {self.ratio} local "
                f"({self.io_interval:,.0f} s apart)"
            )
        if self.compression.factor > 0:
            lines.append(
                f"  compression        {self.compression.factor:.0%} at "
                f"{self.compression.compress_rate / 1e6:,.0f} MB/s ({self.compression.name})"
            )
        lines.append(
            "  overheads          "
            f"ckpt {b.checkpoint:5.1%} | restore {b.restore:5.1%} | rerun {b.rerun:5.1%}"
        )
        return "\n".join(lines)


def _assemble(
    config: str,
    params: CRParameters,
    compression: CompressionSpec,
    tau: float,
    ratio: int,
    io_interval: float,
    k: float,
    ckpt_local_per_work: float,
    ckpt_io_per_work: float,
    restore_local: float,
    restore_io: float,
    rerun_local: float,
    rerun_io: float,
) -> ModelResult:
    """Solve the fixed point and package the breakdown.

    ``k`` is failure-free wall time per unit work; the ``*_per_work`` terms
    are its checkpoint components; the remaining four are expected
    *per-failure* costs in seconds.
    """
    m = params.mtti
    cost_per_failure = restore_local + restore_io + rerun_local + rerun_io
    f = cost_per_failure / m
    if f >= 1.0:
        zero = OverheadBreakdown(
            compute=0.0,
            restore_local=restore_local / cost_per_failure,
            restore_io=restore_io / cost_per_failure,
            rerun_local=rerun_local / cost_per_failure,
            rerun_io=rerun_io / cost_per_failure,
        )
        return ModelResult(
            config=config,
            efficiency=0.0,
            slowdown=math.inf,
            breakdown=zero,
            tau=tau,
            ratio=ratio,
            io_interval=io_interval,
            params=params,
            compression=compression,
        )
    slowdown = k / (1.0 - f)
    compute = 1.0 / slowdown
    breakdown = OverheadBreakdown(
        compute=compute,
        checkpoint_local=ckpt_local_per_work * compute,
        checkpoint_io=ckpt_io_per_work * compute,
        restore_local=restore_local / m,
        restore_io=restore_io / m,
        rerun_local=rerun_local / m,
        rerun_io=rerun_io / m,
    )
    return ModelResult(
        config=config,
        efficiency=compute,
        slowdown=slowdown,
        breakdown=breakdown,
        tau=tau,
        ratio=ratio,
        io_interval=io_interval,
        params=params,
        compression=compression,
    )


def single_level(
    params: CRParameters,
    compression: CompressionSpec = NO_COMPRESSION,
    level: str = "io",
    tau: float | None = None,
) -> ModelResult:
    """Single-level C/R: every checkpoint goes to one storage level.

    ``level="io"`` is the paper's *I/O Only* baseline (all checkpoints to
    the parallel file system, optionally compressed by the host);
    ``level="local"`` checkpoints only to node-local NVM (the idealized
    configuration the 90% progress-rate target is calibrated against).

    Unlike the multilevel configurations, the single-level case is exactly
    Daly's setting, so we use his complete exponential wall-time model
    rather than the linear fixed point — the exponential compounding
    matters in the interrupt-dominated regime (``delta`` comparable to
    ``M``) that the I/O-Only baseline lives in.  The breakdown attributes
    checkpoint time as ``(delta/tau) * efficiency``, restore time as one
    restore per failure (``R/M``), and the remainder of the overhead to
    rerun.

    ``tau`` defaults to Daly's higher-order optimum for the level's commit
    time.
    """
    from . import daly  # local import to avoid cycle at package init

    if level == "io":
        delta = params.io_commit_time(compression)
        restore = params.io_restore_time(compression)
    elif level == "local":
        delta = params.local_commit_time
        restore = params.local_restore_time
    else:
        raise ValueError(f"unknown level: {level!r}")

    if tau is None:
        tau = max(float(daly.daly_interval(delta, params.mtti)), 1e-9)
    restore += params.restart_overhead
    eff = float(daly.efficiency(tau, delta, params.mtti, restore))
    is_io = level == "io"
    name = "I/O Only" if is_io else "Local Only"
    if compression.factor > 0:
        name += f" + compression({compression.factor:.0%})"

    ckpt_frac = (delta / tau) * eff
    restore_frac = min(restore / params.mtti, 1.0 - eff - ckpt_frac)
    rerun_frac = max(1.0 - eff - ckpt_frac - restore_frac, 0.0)
    breakdown = OverheadBreakdown(
        compute=eff,
        checkpoint_local=0.0 if is_io else ckpt_frac,
        checkpoint_io=ckpt_frac if is_io else 0.0,
        restore_local=0.0 if is_io else restore_frac,
        restore_io=restore_frac if is_io else 0.0,
        rerun_local=0.0 if is_io else rerun_frac,
        rerun_io=rerun_frac if is_io else 0.0,
    )
    return ModelResult(
        config=name,
        efficiency=eff,
        slowdown=1.0 / eff if eff > 0 else math.inf,
        breakdown=breakdown,
        tau=tau,
        ratio=0 if is_io else 1,
        io_interval=tau + delta if is_io else math.inf,
        params=params,
        compression=compression,
    )


def io_only(
    params: CRParameters,
    compression: CompressionSpec = NO_COMPRESSION,
    tau: float | None = None,
) -> ModelResult:
    """Alias for :func:`single_level` with ``level="io"``."""
    return single_level(params, compression, level="io", tau=tau)


def multilevel_host(
    params: CRParameters,
    ratio: int,
    compression: CompressionSpec = NO_COMPRESSION,
    rerun_accounting: str = "paper",
) -> ModelResult:
    """Conventional multilevel checkpointing (*Local + I/O-Host*).

    Every checkpoint is committed to local NVM; every ``ratio``-th one is
    additionally pushed to global I/O *by the host*, blocking the
    application for the full (compression-overlapped) I/O commit time.

    Recovery: with probability ``p_local_recovery`` the failure restores
    from the most recent local checkpoint, otherwise from the most recent
    *completed* I/O checkpoint.
    """
    _check_accounting(rerun_accounting)
    if ratio < 1:
        raise ValueError("ratio must be >= 1 (local saves per I/O save)")
    tau = params.tau
    delta_l = params.local_commit_time
    delta_io = params.io_commit_time(compression)
    cycle = tau + delta_l
    period = ratio * cycle + delta_io

    # Expected elapsed time since the last *completed* local checkpoint at
    # a wall-time-uniform failure position.  Within each local cycle the
    # elapsed time ramps 0..cycle; within the blocking I/O write it ramps
    # 0..delta_io (the local copy of the same snapshot completed just
    # before the I/O push began).
    rerun_local = (ratio * cycle * (cycle / 2.0) + delta_io * (delta_io / 2.0)) / period

    # Expected rerun after an I/O-level recovery: half the spacing between
    # I/O snapshots ("paper"), plus the snapshot's commit lag
    # ("staleness": the newest completed I/O checkpoint is already
    # delta_io + delta_l stale the moment it completes).
    rerun_io = period / 2.0
    if rerun_accounting == "staleness":
        rerun_io += delta_io + delta_l

    p = params.p_local_recovery
    name = "Local + I/O-Host"
    if compression.factor > 0:
        name += f" + compression({compression.factor:.0%})"
    return _assemble(
        config=name,
        params=params,
        compression=compression,
        tau=tau,
        ratio=ratio,
        io_interval=period,
        k=1.0 + delta_l / tau + delta_io / (ratio * tau),
        ckpt_local_per_work=delta_l / tau,
        ckpt_io_per_work=delta_io / (ratio * tau),
        restore_local=p * (params.local_restore_time + params.restart_overhead),
        restore_io=(1.0 - p) * (params.io_restore_time(compression) + params.restart_overhead),
        rerun_local=p * rerun_local,
        rerun_io=(1.0 - p) * rerun_io,
    )


def ndp_io_interval(
    params: CRParameters,
    compression: CompressionSpec = NO_COMPRESSION,
    pause_during_local: bool = True,
) -> tuple[int, float, float]:
    """The NDP drain cadence: how often I/O-level snapshots are produced.

    The NDP streams (optionally compressed) checkpoints to global I/O in
    the background.  One checkpoint takes
    ``T_raw = max(csize/io_bw, size/compress_rate)`` of drain work
    (compression and network write overlap, Section 4.2.2).  Because the
    NDP pauses whenever the host is writing to the NVM (Section 4.2.1),
    only ``tau`` out of each ``tau + delta_L`` cycle is available, so one
    drain occupies ``T_raw * cycle/tau`` of wall time.  The NDP therefore
    saves every ``n``-th checkpoint with ``n = ceil(T_drain / cycle)`` —
    as frequently as bandwidth allows, since draining is free for the host.

    Returns ``(n, io_interval, T_raw)``.
    """
    tau = params.tau
    cycle = params.cycle_time
    t_raw = max(
        compression.compressed_size(params.checkpoint_size) / params.io_bandwidth,
        params.checkpoint_size / compression.compress_rate,
    )
    t_drain = t_raw * (cycle / tau) if pause_during_local else t_raw
    n = max(1, math.ceil(t_drain / cycle - 1e-12))
    return n, n * cycle, t_raw


def multilevel_ndp(
    params: CRParameters,
    compression: CompressionSpec = NO_COMPRESSION,
    rerun_accounting: str = "paper",
    pause_during_local: bool = True,
) -> ModelResult:
    """The paper's proposal (*Local + I/O-NDP*).

    All checkpoints are committed to local NVM on the critical path; the
    NDP compresses and drains them to global I/O in the background, so the
    host never pays ``delta_IO``.  I/O-level snapshots are produced as
    frequently as the drain pipeline allows (:func:`ndp_io_interval`);
    unlike the host configuration, increasing that frequency costs nothing,
    so there is no ratio to optimize (Section 6.2).
    """
    _check_accounting(rerun_accounting)
    tau = params.tau
    delta_l = params.local_commit_time
    cycle = tau + delta_l
    n, io_interval, t_raw = ndp_io_interval(params, compression, pause_during_local)

    rerun_local = cycle / 2.0
    rerun_io = io_interval / 2.0
    if rerun_accounting == "staleness":
        rerun_io += t_raw + delta_l

    p = params.p_local_recovery
    name = "Local + I/O-NDP"
    if compression.factor > 0:
        name += f" + compression({compression.factor:.0%})"
    return _assemble(
        config=name,
        params=params,
        compression=compression,
        tau=tau,
        ratio=n,
        io_interval=io_interval,
        k=1.0 + delta_l / tau,
        ckpt_local_per_work=delta_l / tau,
        ckpt_io_per_work=0.0,
        restore_local=p * (params.local_restore_time + params.restart_overhead),
        restore_io=(1.0 - p) * (params.io_restore_time(compression) + params.restart_overhead),
        rerun_local=p * rerun_local,
        rerun_io=(1.0 - p) * rerun_io,
    )


def _check_accounting(rerun_accounting: str) -> None:
    if rerun_accounting not in RERUN_ACCOUNTINGS:
        raise ValueError(
            f"rerun_accounting must be one of {RERUN_ACCOUNTINGS}: {rerun_accounting!r}"
        )
