"""NDP provisioning analysis (Sections 4.4 / 5.3, Table 3).

Given a compression utility's average compression factor and single-thread
speed, derive:

* the *required* aggregate compression speed — the rate at which compressed
  output exactly saturates the per-node I/O bandwidth,
  ``rate = (uncompressed/compressed) * IO_bw`` (going faster is wasted,
  slower leaves I/O idle);
* the number of NDP cores needed to reach it; and
* the smallest achievable interval between I/O-level checkpoints, i.e. the
  time to stream one compressed checkpoint at full I/O bandwidth.

These three columns are Table 3 of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .configs import CompressionSpec, CRParameters

__all__ = ["NDPSizing", "size_ndp", "sizing_table", "select_utility"]


@dataclass(frozen=True)
class NDPSizing:
    """Provisioning result for one compression utility (one Table 3 row).

    Attributes
    ----------
    utility:
        Utility name with compression level, e.g. ``"gzip(1)"``.
    factor:
        Average compression factor used (``1 - compressed/uncompressed``).
    thread_speed:
        Single-thread compression speed, uncompressed B/s.
    required_speed:
        Aggregate compression speed saturating I/O bandwidth, B/s.
    cores:
        NDP cores needed: ``ceil(required_speed / thread_speed)``.
    checkpoint_interval:
        Minimum interval between I/O-level checkpoints, seconds.
    """

    utility: str
    factor: float
    thread_speed: float
    required_speed: float
    cores: int
    checkpoint_interval: float

    def as_spec(self, decompress_rate: float) -> CompressionSpec:
        """A :class:`CompressionSpec` provisioned per this sizing.

        The engine's aggregate rate is ``cores * thread_speed`` — the
        actually-provisioned rate, which is >= the required rate.
        """
        return CompressionSpec(
            factor=self.factor,
            compress_rate=self.cores * self.thread_speed,
            decompress_rate=decompress_rate,
            name=f"ndp-{self.utility}",
        )


def size_ndp(
    utility: str,
    factor: float,
    thread_speed: float,
    params: CRParameters,
) -> NDPSizing:
    """Table 3's arithmetic for a single utility.

    ``factor`` and ``thread_speed`` come from the compression study
    (Table 2 averages); the I/O bandwidth and checkpoint size come from
    ``params``.
    """
    if not 0.0 <= factor < 1.0:
        raise ValueError(f"factor must be in [0, 1): {factor}")
    if thread_speed <= 0:
        raise ValueError("thread_speed must be positive")
    ratio = 1.0 / (1.0 - factor)
    required = ratio * params.io_bandwidth
    cores = math.ceil(required / thread_speed - 1e-9)
    compressed = params.checkpoint_size * (1.0 - factor)
    return NDPSizing(
        utility=utility,
        factor=factor,
        thread_speed=thread_speed,
        required_speed=required,
        cores=max(1, cores),
        checkpoint_interval=compressed / params.io_bandwidth,
    )


def sizing_table(
    study: dict[str, tuple[float, float]],
    params: CRParameters,
) -> list[NDPSizing]:
    """Table 3: one :class:`NDPSizing` per utility.

    ``study`` maps utility name to ``(average_factor,
    average_thread_speed_Bps)`` — the output of
    :func:`repro.compression.study.average_by_utility` or the paper's
    calibration table.
    """
    return [size_ndp(name, f, s, params) for name, (f, s) in study.items()]


def select_utility(
    sizings: list[NDPSizing],
    max_cores: int = 8,
) -> NDPSizing:
    """The paper's Section 5.3 selection rule.

    Among utilities whose core requirement is feasible (<= ``max_cores``),
    pick the one with the smallest achievable I/O checkpoint interval;
    break ties toward fewer cores.  With the paper's numbers this selects
    gzip(6) at 8 cores by interval, but the paper chooses gzip(1) as the
    sweet spot — pass ``max_cores=4`` to reproduce that choice exactly.
    """
    feasible = [s for s in sizings if s.cores <= max_cores]
    if not feasible:
        raise ValueError(f"no utility feasible within {max_cores} NDP cores")
    return min(feasible, key=lambda s: (s.checkpoint_interval, s.cores))
