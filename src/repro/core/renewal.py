"""A renewal / absorbing-Markov-chain analytic model of multilevel C/R.

The paper's performance model (:mod:`repro.core.model`) is an
expected-value accounting with a linear fixed point.  This module provides
an *independent second analytic method* in the lineage of Moody et al.'s
SC'10 Markov model (the multilevel-checkpointing paper this work builds
on): execution through one super-period is an absorbing Markov chain whose
states are "about to execute local cycle k" (plus, for host
configurations, the blocking I/O write), with exponential failures
deciding the transitions:

* an attempt at a phase of nominal length ``s`` succeeds with probability
  ``q = exp(-s/M)``;
* a failed attempt lasts ``E[t | t < s] = 1/lambda - s*q/(1-q)`` and then
  pays a recovery: with probability ``p_local`` restore from the cycle's
  own local checkpoint (retry the same state), otherwise restore from the
  I/O-level snapshot (return to state 0, the super-period start);
* restores themselves can fail, which is folded in exactly for the
  memoryless distribution: a restore of length ``R`` completes after
  expected time ``M*(exp(R/M)-1)`` with a fresh recovery decision on each
  interior failure — the standard geometric-retry closed form.

Expected *time and per-category rewards* from each state solve the linear
system ``E = r + P E`` (``(I-P)E = r``); efficiency is
``n*tau / E[state 0]``.  Because failures-during-rerun, during-restore and
during-checkpoint are all handled through the chain rather than a single
fixed point, this model is exact for the stated semantics — the
cross-method experiment (``ablation-methods``) shows it sitting between
the expected-value model and the discrete-event simulator.

Semantics matched to the simulator: an I/O-level recovery loses the NVM
contents, so the rollback target is the newest *I/O* snapshot (state 0 of
the chain).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .breakdown import OverheadBreakdown
from .configs import NO_COMPRESSION, CompressionSpec, CRParameters
from .model import ModelResult, ndp_io_interval

__all__ = ["renewal_multilevel_host", "renewal_multilevel_ndp", "PhaseChain"]

_CATS = OverheadBreakdown.component_names()


@dataclass(frozen=True)
class _Phase:
    """One chain state: a phase attempt with its category splits.

    ``rewards`` maps category -> seconds accrued on a *successful* attempt
    (must sum to the phase length); failed attempts pro-rate the same
    split over the expected failure time.
    """

    length: float
    rewards: dict[str, float]


class PhaseChain:
    """Absorbing-chain solver over a cyclic sequence of phases.

    States 0..K-1 are the phases of one super-period in order; completing
    the last phase absorbs.  On failure, the chain restarts the *current*
    phase after a local restore (probability ``p_local``) or returns to
    state 0 after an I/O restore.

    The local-recovery retry semantics deserve a note: restoring from the
    most recent local checkpoint puts the application at the *start of the
    current phase's work*, which is exactly "retry the current state" for
    compute phases.  For checkpoint-write phases the snapshot precedes the
    write, so the retry repeats the write — also correct.
    """

    def __init__(
        self,
        phases: list[_Phase],
        mtti: float,
        p_local: float,
        restore_local: float,
        restore_io: float,
    ):
        if not phases:
            raise ValueError("need at least one phase")
        if mtti <= 0:
            raise ValueError("mtti must be positive")
        if not 0.0 <= p_local <= 1.0:
            raise ValueError("p_local must be in [0, 1]")
        self.phases = phases
        self.mtti = mtti
        self.p_local = p_local
        self.restore_local = restore_local
        self.restore_io = restore_io

    # -- closed forms -----------------------------------------------------------

    def _fail_prob(self, s: float) -> float:
        """P(failure within s) = 1 - exp(-s/M), computed cancellation-free."""
        return -math.expm1(-s / self.mtti)

    def _fail_time(self, s: float) -> float:
        """E[failure time | failure strikes within s] for Exp(1/M)."""
        if s <= 0:
            return 0.0
        x = s / self.mtti
        if x < 1e-6:
            # Series expansion: M - s(1-f)/f cancels catastrophically for
            # tiny x; E[t | t < s] = s/2 - s*x/12 + O(x^2).
            return s / 2.0 - s * x / 12.0
        f = self._fail_prob(s)
        return self.mtti - s * (1.0 - f) / f

    def _restore_completed(self, r: float) -> tuple[float, float]:
        """(expected time to finish a restore, expected extra recoveries).

        A restore of nominal length ``r`` under memoryless failures
        completes after expected wall time ``M*(e^{r/M}-1)``; the expected
        number of interior failures (each triggering a fresh recovery
        decision *recursively*) is ``e^{r/M}-1``.  We fold the recursion
        by treating each interior failure as restarting the same restore,
        which the closed form already captures; the recovery *decision*
        redraw is handled by the caller mixing local/I/O restores with
        fixed probabilities (valid because the draw is i.i.d.).
        """
        x = math.expm1(r / self.mtti)
        return self.mtti * x, x

    # -- solve --------------------------------------------------------------------

    def solve(self) -> tuple[float, dict[str, float]]:
        """Expected wall time from state 0 to absorption, with category split.

        Returns ``(total_seconds, seconds_per_category)``.
        """
        k = len(self.phases)
        lam = 1.0 / self.mtti
        # Expected restore costs per recovery (with interior-failure
        # inflation); category attribution.
        er_local, _ = self._restore_completed(self.restore_local)
        er_io, _ = self._restore_completed(self.restore_io)

        p = self.p_local
        # Per-state quantities (f computed via expm1 to avoid cancellation).
        f = np.array([self._fail_prob(ph.length) for ph in self.phases])
        q = 1.0 - f
        fail_t = np.array([self._fail_time(ph.length) for ph in self.phases])

        # Transition matrix among transient states: from state i,
        #   success (q_i)          -> i+1 (or absorb)
        #   fail * p_local         -> i  (retry after local restore)
        #   fail * (1 - p_local)   -> 0  (after I/O restore)
        P = np.zeros((k, k))
        for i in range(k):
            if i + 1 < k:
                P[i, i + 1] = q[i]
            P[i, i] += f[i] * p
            P[i, 0] += f[i] * (1.0 - p)

        # Expected one-step time from state i.
        r_time = q * np.array([ph.length for ph in self.phases])
        r_time += f * (fail_t + p * er_local + (1.0 - p) * er_io)

        E = np.linalg.solve(np.eye(k) - P, r_time)
        total = float(E[0])

        # Category rewards: visits N = (I - P)^-T e_0 gives expected visit
        # counts from state 0; category seconds = sum_i visits_i * reward_i.
        visits = np.linalg.solve((np.eye(k) - P).T, np.eye(k)[0])
        cats = {c: 0.0 for c in _CATS}
        for i, ph in enumerate(self.phases):
            v = float(visits[i])
            fail_share = (1.0 - q[i]) * v
            # Successful completion: one per visit chain — a state is
            # completed exactly q_i fraction of its visits.
            done_share = q[i] * v
            for c, seconds in ph.rewards.items():
                frac = seconds / ph.length if ph.length > 0 else 0.0
                cats[c] += done_share * seconds
                # A failed attempt accrues the same mix, pro-rated, but
                # the work portion is *lost* — charge it to rerun.  The
                # rerun level is the recovery that will follow.
                lost = fail_share * fail_t[i] * frac
                if c == "compute":
                    cats["rerun_local"] += lost * p
                    cats["rerun_io"] += lost * (1.0 - p)
                else:
                    # Re-done overhead also counts as rerun of that kind.
                    cats["rerun_local"] += lost * p
                    cats["rerun_io"] += lost * (1.0 - p)
            cats["restore_local"] += fail_share * p * er_local
            cats["restore_io"] += fail_share * (1.0 - p) * er_io
        # Work re-executed after recoveries (progress rolled back and
        # redone) shows up as extra visits: the chain re-runs whole phases,
        # whose successful completions we charged to their own categories.
        # Convert the *excess* compute completions (beyond one per phase)
        # into rerun: exactly (done_share - 1) completions per state are
        # re-executions.
        for i, ph in enumerate(self.phases):
            excess = max(q[i] * float(visits[i]) - 1.0, 0.0)
            for c, seconds in ph.rewards.items():
                if excess <= 0:
                    continue
                moved = excess * seconds
                cats[c] -= moved
                cats["rerun_local"] += moved * p
                cats["rerun_io"] += moved * (1.0 - p)
        del lam
        return total, cats


def _cycle_phases(params: CRParameters) -> list[_Phase]:
    tau = params.tau
    dl = params.local_commit_time
    return [
        _Phase(tau, {"compute": tau}),
        _Phase(dl, {"checkpoint_local": dl}),
    ]


def _pack(
    name: str,
    params: CRParameters,
    compression: CompressionSpec,
    ratio: int,
    io_interval: float,
    total: float,
    cats: dict[str, float],
    work: float,
) -> ModelResult:
    eff = work / total
    frac = {c: max(v, 0.0) / total for c, v in cats.items()}
    # Normalize tiny numerical drift so the breakdown sums to 1.
    frac["compute"] = eff
    scale = (1.0 - eff) / max(sum(v for c, v in frac.items() if c != "compute"), 1e-300)
    for c in frac:
        if c != "compute":
            frac[c] *= scale
    return ModelResult(
        config=name,
        efficiency=eff,
        slowdown=total / work,
        breakdown=OverheadBreakdown(**frac),
        tau=params.tau,
        ratio=ratio,
        io_interval=io_interval,
        params=params,
        compression=compression,
    )


def renewal_multilevel_host(
    params: CRParameters,
    ratio: int,
    compression: CompressionSpec = NO_COMPRESSION,
) -> ModelResult:
    """*Local + I/O-Host* via the absorbing-chain renewal model."""
    if ratio < 1:
        raise ValueError("ratio must be >= 1")
    phases: list[_Phase] = []
    for _ in range(ratio):
        phases.extend(_cycle_phases(params))
    dio = params.io_commit_time(compression)
    phases.append(_Phase(dio, {"checkpoint_io": dio}))
    chain = PhaseChain(
        phases,
        mtti=params.mtti,
        p_local=params.p_local_recovery,
        restore_local=params.local_restore_time + params.restart_overhead,
        restore_io=params.io_restore_time(compression) + params.restart_overhead,
    )
    total, cats = chain.solve()
    work = ratio * params.tau
    name = "Renewal: Local + I/O-Host"
    if compression.factor > 0:
        name += f" + compression({compression.factor:.0%})"
    return _pack(
        name, params, compression, ratio, ratio * params.cycle_time + dio, total, cats, work
    )


def renewal_multilevel_ndp(
    params: CRParameters,
    compression: CompressionSpec = NO_COMPRESSION,
    pause_during_local: bool = True,
) -> ModelResult:
    """*Local + I/O-NDP* via the absorbing-chain renewal model.

    The NDP drain is off the critical path, so the chain contains only
    local cycles; the super-period spans the drain-determined
    ``n = ceil(T_drain / cycle)`` cycles between I/O snapshots
    (state 0 of the chain = newest I/O snapshot).
    """
    n, io_interval, _ = ndp_io_interval(params, compression, pause_during_local)
    phases: list[_Phase] = []
    for _ in range(n):
        phases.extend(_cycle_phases(params))
    chain = PhaseChain(
        phases,
        mtti=params.mtti,
        p_local=params.p_local_recovery,
        restore_local=params.local_restore_time + params.restart_overhead,
        restore_io=params.io_restore_time(compression) + params.restart_overhead,
    )
    total, cats = chain.solve()
    work = n * params.tau
    name = "Renewal: Local + I/O-NDP"
    if compression.factor > 0:
        name += f" + compression({compression.factor:.0%})"
    return _pack(name, params, compression, n, io_interval, total, cats, work)
