"""Daly's analytic checkpoint/restart model.

This module implements the two classic results the paper builds on:

* J. T. Daly, *A higher order estimate of the optimum checkpoint interval
  for restart dumps*, FGCS 22 (2006) — the "complete" expected wall-time
  model for an application running under exponentially-distributed
  interrupts with periodic checkpointing, and the first-order /
  higher-order estimates of the optimum checkpoint interval.
* J. T. Daly, *Quantifying checkpoint efficiency* (2007) — efficiency
  (a.k.a. *progress rate*) at the optimum interval as a function of the
  ratio ``M/delta`` of mean time to interrupt to checkpoint commit time.
  This is Figure 1 of the reproduced paper.

Notation (matching the paper):

* ``M`` — system mean time to interrupt (seconds),
* ``delta`` — time to commit one checkpoint (seconds),
* ``R`` — time to restore from a checkpoint (the paper assumes
  ``R == delta`` throughout),
* ``tau`` — useful-compute interval between checkpoints (seconds),
* ``W`` — total useful work ("solve time") of the application (seconds).

All functions are vectorized over numpy arrays; scalars in, scalars out.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "young_interval",
    "daly_interval",
    "expected_wall_time",
    "efficiency",
    "optimal_efficiency",
    "efficiency_vs_m_over_delta",
    "required_delta_for_efficiency",
    "optimal_interval_fraction",
]

ArrayLike = Union[float, np.ndarray]


def young_interval(delta: ArrayLike, mtti: ArrayLike) -> ArrayLike:
    """First-order (Young's) optimum checkpoint interval ``sqrt(2*delta*M)``.

    Valid when ``delta << M``.  Returned value is the *useful compute*
    interval between the end of one checkpoint and the start of the next.
    """
    delta = np.asarray(delta, dtype=float)
    mtti = np.asarray(mtti, dtype=float)
    return _unwrap(np.sqrt(2.0 * delta * mtti))


def daly_interval(delta: ArrayLike, mtti: ArrayLike) -> ArrayLike:
    """Daly's higher-order estimate of the optimum checkpoint interval.

    Implements eq. (37) of Daly (2006)::

        tau_opt = sqrt(2*delta*M) * [1 + (1/3)*sqrt(delta/(2M))
                                       + (1/9)*(delta/(2M))] - delta

    for ``delta < 2M``, and ``tau_opt = M`` otherwise (the interrupt-
    dominated regime, where checkpointing more often than once per MTTI
    is futile).
    """
    delta = np.asarray(delta, dtype=float)
    mtti = np.asarray(mtti, dtype=float)
    x = delta / (2.0 * mtti)
    series = np.sqrt(2.0 * delta * mtti) * (1.0 + np.sqrt(x) / 3.0 + x / 9.0) - delta
    out = np.where(delta < 2.0 * mtti, series, mtti)
    return _unwrap(out)


def expected_wall_time(
    work: ArrayLike,
    tau: ArrayLike,
    delta: ArrayLike,
    mtti: ArrayLike,
    restart: ArrayLike | None = None,
) -> ArrayLike:
    """Daly's complete expected wall-time model.

    Expected total wall-clock time to complete ``work`` seconds of useful
    computation, checkpointing every ``tau`` seconds of compute with commit
    time ``delta``, restart time ``restart`` (defaults to ``delta``), under
    exponential interrupts with mean ``mtti``::

        T = M * exp(R/M) * (exp((tau + delta)/M) - 1) * work / tau

    This form accounts for failures striking during checkpoint commits,
    restarts, and rework (the exponential terms compound them exactly for
    memoryless interrupts).
    """
    work = np.asarray(work, dtype=float)
    tau = np.asarray(tau, dtype=float)
    delta = np.asarray(delta, dtype=float)
    mtti = np.asarray(mtti, dtype=float)
    r = delta if restart is None else np.asarray(restart, dtype=float)
    n_segments = work / tau
    per_segment = mtti * np.exp(r / mtti) * np.expm1((tau + delta) / mtti)
    return _unwrap(per_segment * n_segments)


def efficiency(
    tau: ArrayLike,
    delta: ArrayLike,
    mtti: ArrayLike,
    restart: ArrayLike | None = None,
) -> ArrayLike:
    """Progress rate ``work / expected_wall_time`` at interval ``tau``.

    Independent of total work because the model is linear in ``work``.
    """
    tau = np.asarray(tau, dtype=float)
    wall = expected_wall_time(1.0, tau, delta, mtti, restart)
    return _unwrap(1.0 / np.asarray(wall, dtype=float))


def optimal_efficiency(
    delta: ArrayLike,
    mtti: ArrayLike,
    restart: ArrayLike | None = None,
    order: str = "daly",
) -> ArrayLike:
    """Progress rate at the optimum checkpoint interval.

    ``order`` selects the interval estimate: ``"daly"`` (higher order,
    default) or ``"young"`` (first order).  The paper's Figure 1 plots this
    quantity against ``M/delta``.
    """
    if order == "daly":
        tau = daly_interval(delta, mtti)
    elif order == "young":
        tau = young_interval(delta, mtti)
    else:
        raise ValueError(f"unknown interval order: {order!r}")
    # Guard against degenerate non-positive tau in extreme regimes.
    tau = np.maximum(np.asarray(tau, dtype=float), np.asarray(mtti, float) * 1e-9)
    return efficiency(tau, delta, mtti, restart)


def efficiency_vs_m_over_delta(
    m_over_delta: ArrayLike,
    order: str = "daly",
) -> ArrayLike:
    """Figure 1 of the paper: progress rate as a function of ``M/delta``.

    The efficiency at the optimum interval depends on ``M`` and ``delta``
    only through their ratio (with ``R = delta``), so the curve is
    universal.  We fix ``delta = 1`` and vary ``M``.
    """
    ratio = np.asarray(m_over_delta, dtype=float)
    if np.any(ratio <= 0):
        raise ValueError("M/delta must be positive")
    return optimal_efficiency(1.0, ratio, order=order)


def required_delta_for_efficiency(
    target: float,
    mtti: float,
    order: str = "daly",
    tol: float = 1e-10,
) -> float:
    """Invert Figure 1: the commit time needed to hit a target progress rate.

    Solves ``optimal_efficiency(delta, mtti) == target`` for ``delta`` by
    bisection.  The paper uses this to derive that a 90% progress rate
    requires ``delta ~ M/200`` (Section 3.3).
    """
    if not 0.0 < target < 1.0:
        raise ValueError("target efficiency must be in (0, 1)")
    lo, hi = mtti * 1e-12, mtti * 10.0
    f_lo = float(optimal_efficiency(lo, mtti, order=order))
    if f_lo < target:
        raise ValueError(
            f"target efficiency {target} unreachable even with delta -> 0 "
            f"(max achievable {f_lo:.4f})"
        )
    # Efficiency is monotonically decreasing in delta.
    for _ in range(200):
        mid = np.sqrt(lo * hi)  # geometric bisection: delta spans decades
        if float(optimal_efficiency(mid, mtti, order=order)) >= target:
            lo = mid
        else:
            hi = mid
        if hi / lo - 1.0 < tol:
            break
    return float(np.sqrt(lo * hi))


def optimal_interval_fraction(target: float, mtti: float, order: str = "daly") -> float:
    """Optimum checkpoint period as a fraction of MTTI at a target efficiency.

    The paper notes the checkpoint *period* (interval + commit) should be
    roughly ``M/10`` at 90% efficiency.  This helper reproduces that
    derivation: find the commit time for the target efficiency, then report
    ``(tau_opt + delta) / M``.
    """
    delta = required_delta_for_efficiency(target, mtti, order=order)
    tau = float(daly_interval(delta, mtti) if order == "daly" else young_interval(delta, mtti))
    return (tau + delta) / mtti


def _unwrap(a: np.ndarray) -> ArrayLike:
    """Return a python float for 0-d arrays, pass arrays through."""
    if isinstance(a, np.ndarray) and a.ndim == 0:
        return float(a)
    return a
