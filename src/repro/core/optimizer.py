"""Empirical optimizers over the performance model (Sections 6.1.2 / 6.2).

The paper derives the optimal locally-saved : I/O-saved checkpoint ratio
*empirically* — by sweeping the ratio in the model and picking the maximum
progress rate (Figure 4 shows the sweep, Figure 5 the optima).  This module
implements that sweep plus a Daly-seeded optimizer for the local checkpoint
interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from . import daly
from .configs import NO_COMPRESSION, CompressionSpec, CRParameters
from .model import ModelResult, multilevel_host

__all__ = [
    "RatioSweepPoint",
    "sweep_ratio",
    "optimal_ratio",
    "optimal_host",
    "optimal_local_interval",
    "golden_section_max",
    "clear_cache",
]

#: Shared memo of host-model evaluations, keyed by the full scenario
#: (params, ratio, compression, accounting).  :func:`sweep_ratio`,
#: :func:`optimal_ratio` and :func:`optimal_host` all consult it, so the
#: fig4 -> fig5 pipeline — which sweeps ratios and then re-brackets the
#: optimum over the very same scenarios — evaluates each ratio once.
#: All key parts are frozen dataclasses of scalars, hence hashable.
_MEMO: dict[tuple, ModelResult] = {}

#: Memo size cap: one full fig5 matrix is a few thousand entries; wipe
#: wholesale well before memory could matter (re-evaluation is cheap).
_MEMO_MAX = 65536


def _evaluate(
    params: CRParameters,
    ratio: int,
    compression: CompressionSpec,
    rerun_accounting: str,
) -> ModelResult:
    key = (params, int(ratio), compression, rerun_accounting)
    result = _MEMO.get(key)
    if result is None:
        if len(_MEMO) >= _MEMO_MAX:
            _MEMO.clear()
        result = _MEMO[key] = multilevel_host(params, ratio, compression, rerun_accounting)
    return result


def clear_cache() -> None:
    """Drop every memoized host-model evaluation (for tests/benchmarks)."""
    _MEMO.clear()


@dataclass(frozen=True)
class RatioSweepPoint:
    """One point of the Figure-4 sweep: ratio and the model result at it."""

    ratio: int
    result: ModelResult

    @property
    def efficiency(self) -> float:
        """Progress rate at this ratio."""
        return self.result.efficiency


def sweep_ratio(
    params: CRParameters,
    ratios: Sequence[int],
    compression: CompressionSpec = NO_COMPRESSION,
    rerun_accounting: str = "paper",
) -> list[RatioSweepPoint]:
    """Evaluate *Local + I/O-Host* at each ratio (Figure 4's x-axis).

    Evaluations go through the shared memo, so a sweep followed by
    :func:`optimal_ratio` on the same scenario never re-evaluates a ratio.
    """
    return [
        RatioSweepPoint(r, _evaluate(params, r, compression, rerun_accounting))
        for r in ratios
    ]


def optimal_ratio(
    params: CRParameters,
    compression: CompressionSpec = NO_COMPRESSION,
    rerun_accounting: str = "paper",
    max_ratio: int = 2000,
) -> int:
    """The ratio maximizing host-multilevel progress rate (Figure 5).

    Efficiency as a function of the (integer) ratio is unimodal: small
    ratios over-pay checkpoint-I/O time, large ratios over-pay rerun-I/O
    time.  We exploit unimodality with a doubling bracket followed by a
    ternary search, falling back to a linear scan of the final bracket, so
    the search is exact and cheap even when the optimum is large.
    Evaluations go through the module-level memo shared with
    :func:`sweep_ratio`/:func:`optimal_host`: the bracket, ternary and
    scan phases revisit ratios, and the fig4 -> fig5 pipeline revisits
    whole scenarios; each model evaluation walks the full failure/rerun
    terms exactly once per scenario (reset via :func:`clear_cache`).
    """

    def eff(r: int) -> float:
        return _evaluate(params, r, compression, rerun_accounting).efficiency

    # Doubling bracket: find hi with eff(hi) <= eff(hi/2).
    lo, hi = 1, 2
    while hi < max_ratio and eff(hi) > eff(max(1, hi // 2)):
        hi *= 2
    hi = min(hi, max_ratio)
    lo = max(1, hi // 4)
    # Ternary search down to a small window, then exact linear scan.
    while hi - lo > 8:
        m1 = lo + (hi - lo) // 3
        m2 = hi - (hi - lo) // 3
        if eff(m1) < eff(m2):
            lo = m1 + 1
        else:
            hi = m2 - 1
    best = max(range(lo, hi + 1), key=eff)
    return best


def optimal_host(
    params: CRParameters,
    compression: CompressionSpec = NO_COMPRESSION,
    rerun_accounting: str = "paper",
) -> ModelResult:
    """*Local + I/O-Host* evaluated at its empirically optimal ratio."""
    r = optimal_ratio(params, compression, rerun_accounting)
    return _evaluate(params, r, compression, rerun_accounting)


def optimal_local_interval(
    params: CRParameters,
    evaluate: Callable[[CRParameters], ModelResult] | None = None,
) -> float:
    """Optimize the local checkpoint interval ``tau``.

    By default the Daly higher-order optimum for the local commit time is
    refined by a golden-section search over the supplied ``evaluate``
    callable (which receives parameters with ``local_interval`` set and
    returns a :class:`ModelResult`).  Without ``evaluate`` the Daly
    estimate itself is returned — for multilevel configurations the two
    agree closely because local commits dominate the interval choice.
    """
    seed = float(daly.daly_interval(params.local_commit_time, params.mtti))
    if evaluate is None:
        return seed

    def eff(tau: float) -> float:
        return evaluate(params.with_(local_interval=tau)).efficiency

    return golden_section_max(eff, seed / 8.0, seed * 8.0)


def golden_section_max(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-3,
    max_iter: int = 200,
) -> float:
    """Golden-section search for the maximum of a unimodal function.

    Returns the abscissa of the maximum of ``f`` on ``[lo, hi]`` to a
    relative tolerance ``tol``.
    """
    if not lo < hi:
        raise ValueError("need lo < hi")
    invphi = (5.0**0.5 - 1.0) / 2.0
    a, b = lo, hi
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    fc, fd = f(c), f(d)
    for _ in range(max_iter):
        if (b - a) <= tol * max(abs(a), abs(b), 1e-300):
            break
        if fc > fd:
            b, d, fd = d, c, fc
            c = b - invphi * (b - a)
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + invphi * (b - a)
            fd = f(d)
    return (a + b) / 2.0
