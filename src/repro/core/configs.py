"""Parameter bundles for the C/R performance model (Table 4 of the paper).

Two dataclasses carry everything the analytic model and the discrete-event
simulator need:

* :class:`CompressionSpec` — a compression engine: factor achieved and the
  aggregate throughput of whatever is running it (host cores or NDP cores).
* :class:`CRParameters` — the per-node C/R scenario: MTTI, checkpoint size,
  storage bandwidths, scheduling knobs and recovery probabilities.

Module-level constants reproduce the paper's Table 4 configuration and the
compression engines it evaluates (64 host cores at 10 MB/s; 4 NDP cores of
gzip(1) at 110.1 MB/s each; 64-core host decompression capped at 16 GB/s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from . import daly
from .units import gb, gb_per_s, mb_per_s, minutes

__all__ = [
    "CompressionSpec",
    "CRParameters",
    "NO_COMPRESSION",
    "HOST_GZIP1",
    "NDP_GZIP1",
    "paper_parameters",
]


@dataclass(frozen=True)
class CompressionSpec:
    """A compression engine applied to I/O-level checkpoint traffic.

    Attributes
    ----------
    factor:
        Compression factor, defined as in the paper:
        ``1 - compressed_size / uncompressed_size``.  0 means
        incompressible; the paper's mini-app average under gzip(1) is 0.728.
    compress_rate:
        Aggregate compression throughput of the engine in *uncompressed*
        bytes per second (threads x per-thread speed).
    decompress_rate:
        Aggregate decompression throughput in *uncompressed* bytes per
        second, used on the restore path.
    name:
        Label for reports.
    """

    factor: float
    compress_rate: float
    decompress_rate: float
    name: str = "compression"

    def __post_init__(self) -> None:
        if not 0.0 <= self.factor < 1.0:
            raise ValueError(f"compression factor must be in [0, 1): {self.factor}")
        if self.compress_rate <= 0 or self.decompress_rate <= 0:
            raise ValueError("compression rates must be positive")

    @property
    def ratio(self) -> float:
        """``uncompressed / compressed`` size ratio (paper Section 4.4)."""
        return 1.0 / (1.0 - self.factor)

    def compressed_size(self, nbytes: float) -> float:
        """Size after compression of ``nbytes`` of checkpoint data."""
        return nbytes * (1.0 - self.factor)

    def with_factor(self, factor: float) -> "CompressionSpec":
        """Copy of this engine achieving a different compression factor."""
        return replace(self, factor=factor)


#: Sentinel spec for "no compression" — factor 0, infinite throughput so it
#: never appears on any critical path.
NO_COMPRESSION = CompressionSpec(
    factor=0.0, compress_rate=math.inf, decompress_rate=math.inf, name="none"
)

#: Host-side compression: 64 CPU cores at the conservative 10 MB/s/thread
#: figure of Section 3.5 => 640 MB/s aggregate.  Decompression at the
#: conservative 16 GB/s of Table 4.
HOST_GZIP1 = CompressionSpec(
    factor=0.728,
    compress_rate=mb_per_s(640),
    decompress_rate=gb_per_s(16),
    name="host-gzip(1)",
)

#: NDP-side compression: 4 NDP cores of gzip(1) at the measured
#: 110.1 MB/s/core => 440.4 MB/s (Section 5.3).  Restore-side
#: decompression still happens on the host (Section 4.3).
NDP_GZIP1 = CompressionSpec(
    factor=0.728,
    compress_rate=mb_per_s(440.4),
    decompress_rate=gb_per_s(16),
    name="ndp-gzip(1)",
)


@dataclass(frozen=True)
class CRParameters:
    """Per-node checkpoint/restart scenario (the paper's Table 4).

    Attributes
    ----------
    mtti:
        System mean time to interrupt (seconds).  Failures are
        exponentially distributed.
    checkpoint_size:
        Uncompressed checkpoint size per node (bytes); the paper uses 80%
        of the 140 GB node memory = 112 GB.
    local_bandwidth:
        Node-local NVM read/write bandwidth (B/s).
    io_bandwidth:
        Effective per-node bandwidth to global I/O (B/s); the projected
        10 TB/s over 100k nodes = 100 MB/s.
    local_interval:
        Useful-compute interval between local checkpoints, seconds.
        ``None`` selects Daly's optimum for the local commit time.
    p_local_recovery:
        Probability a failure can be recovered from a locally-saved
        (local- or partner-level) checkpoint.  The remainder recover from
        global I/O.
    restart_overhead:
        Fixed per-recovery overhead (job relaunch etc.), seconds.  The
        paper folds this into restore time; default 0.
    """

    mtti: float = minutes(30)
    checkpoint_size: float = gb(112)
    local_bandwidth: float = gb_per_s(15)
    io_bandwidth: float = mb_per_s(100)
    local_interval: float | None = 150.0
    p_local_recovery: float = 0.85
    restart_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.mtti <= 0:
            raise ValueError("mtti must be positive")
        if self.checkpoint_size <= 0:
            raise ValueError("checkpoint_size must be positive")
        if self.local_bandwidth <= 0 or self.io_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.local_interval is not None and self.local_interval <= 0:
            raise ValueError("local_interval must be positive")
        if not 0.0 <= self.p_local_recovery <= 1.0:
            raise ValueError("p_local_recovery must be in [0, 1]")
        if self.restart_overhead < 0:
            raise ValueError("restart_overhead must be non-negative")

    @property
    def local_commit_time(self) -> float:
        """Time to write one checkpoint to local NVM (``delta_L``)."""
        return self.checkpoint_size / self.local_bandwidth

    @property
    def local_restore_time(self) -> float:
        """Time to read one checkpoint back from local NVM (``R_L``)."""
        return self.checkpoint_size / self.local_bandwidth

    @property
    def tau(self) -> float:
        """The local checkpoint interval actually used by the model.

        Either the explicit :attr:`local_interval` or Daly's higher-order
        optimum for the local commit time.
        """
        if self.local_interval is not None:
            return self.local_interval
        return float(daly.daly_interval(self.local_commit_time, self.mtti))

    @property
    def cycle_time(self) -> float:
        """One local cycle: compute interval + local commit."""
        return self.tau + self.local_commit_time

    def io_commit_time(self, compression: CompressionSpec = NO_COMPRESSION) -> float:
        """Wall time to push one checkpoint to global I/O (``delta_IO``).

        Compression overlaps with the network write (Section 4.2.2), so
        the commit is bound by the slower of producing compressed bytes
        and draining them: ``max(size/compress_rate, csize/io_bw)``.
        """
        stream = compression.compressed_size(self.checkpoint_size) / self.io_bandwidth
        produce = self.checkpoint_size / compression.compress_rate
        return max(stream, produce)

    def io_restore_time(self, compression: CompressionSpec = NO_COMPRESSION) -> float:
        """Time to restore a checkpoint from global I/O (``R_IO``).

        The compressed stream is decompressed on the fly by the host
        (Section 4.3), so restore is bound by
        ``max(csize/io_bw, size/decompress_rate)``.
        """
        stream = compression.compressed_size(self.checkpoint_size) / self.io_bandwidth
        expand = self.checkpoint_size / compression.decompress_rate
        return max(stream, expand)

    def with_(self, **changes: object) -> "CRParameters":
        """Functional update, e.g. ``params.with_(mtti=minutes(60))``."""
        return replace(self, **changes)  # type: ignore[arg-type]


def paper_parameters(**overrides: object) -> CRParameters:
    """The exact Table 4 configuration, with optional field overrides."""
    return CRParameters().with_(**overrides) if overrides else CRParameters()
