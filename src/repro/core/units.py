"""Unit conventions and conversion helpers.

Every quantity in this library uses a single base unit so that model code
never needs to guess magnitudes:

* **time** — seconds (``float``)
* **data** — bytes (``float``; checkpoint sizes routinely exceed 2**53
  nowhere near, so float is exact for all practical sizes)
* **bandwidth / rate** — bytes per second
* **frequency** — hertz (1/seconds)

The paper (and storage vendors) use *decimal* multiples: 1 GB = 1e9 bytes,
1 GB/s = 1e9 B/s.  Binary (GiB) helpers are provided for callers that need
them, but every constant derived from the paper uses the decimal versions.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "YEAR",
    "kb",
    "mb",
    "gb",
    "tb",
    "pb",
    "gib",
    "minutes",
    "hours",
    "days",
    "years",
    "to_minutes",
    "to_gb",
    "to_mb",
    "mb_per_s",
    "gb_per_s",
    "tb_per_s",
    "parse_bytes",
    "parse_time",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
]

# Decimal data units (paper convention).
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12
PB = 1e15

# Binary data units.
KIB = 2.0**10
MIB = 2.0**20
GIB = 2.0**30
TIB = 2.0**40

# Time units.
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
# Julian year, the convention used for MTTF figures such as "5 year MTTF".
YEAR = 365.25 * DAY


def kb(x: float) -> float:
    """Kilobytes to bytes."""
    return x * KB


def mb(x: float) -> float:
    """Megabytes to bytes."""
    return x * MB


def gb(x: float) -> float:
    """Gigabytes to bytes."""
    return x * GB


def tb(x: float) -> float:
    """Terabytes to bytes."""
    return x * TB


def pb(x: float) -> float:
    """Petabytes to bytes."""
    return x * PB


def gib(x: float) -> float:
    """Gibibytes to bytes."""
    return x * GIB


def minutes(x: float) -> float:
    """Minutes to seconds."""
    return x * MINUTE


def hours(x: float) -> float:
    """Hours to seconds."""
    return x * HOUR


def days(x: float) -> float:
    """Days to seconds."""
    return x * DAY


def years(x: float) -> float:
    """Julian years to seconds."""
    return x * YEAR


def to_minutes(seconds: float) -> float:
    """Seconds to minutes."""
    return seconds / MINUTE


def to_gb(nbytes: float) -> float:
    """Bytes to (decimal) gigabytes."""
    return nbytes / GB


def to_mb(nbytes: float) -> float:
    """Bytes to (decimal) megabytes."""
    return nbytes / MB


def mb_per_s(x: float) -> float:
    """MB/s to bytes/s."""
    return x * MB


def gb_per_s(x: float) -> float:
    """GB/s to bytes/s."""
    return x * GB


def tb_per_s(x: float) -> float:
    """TB/s to bytes/s."""
    return x * TB


_BYTE_SUFFIXES = {
    "b": 1.0,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "pb": PB,
    "kib": KIB,
    "mib": MIB,
    "gib": GIB,
    "tib": TIB,
}

_TIME_SUFFIXES = {
    "s": SECOND,
    "sec": SECOND,
    "min": MINUTE,
    "m": MINUTE,
    "h": HOUR,
    "hr": HOUR,
    "d": DAY,
    "day": DAY,
    "y": YEAR,
    "yr": YEAR,
}


def parse_bytes(text: str) -> float:
    """Parse a human byte quantity: ``"112GB"``, ``"30.5 MB"``, ``"4096"``.

    Bare numbers are bytes; suffixes are case-insensitive, decimal (GB) or
    binary (GiB).  Rates parse too: ``parse_bytes("100MB")`` for the
    numerator of "100 MB/s".
    """
    return _parse_suffixed(text, _BYTE_SUFFIXES, "byte quantity")


def parse_time(text: str) -> float:
    """Parse a human duration: ``"30min"``, ``"9 s"``, ``"2.5h"``, ``"5y"``.

    Bare numbers are seconds.
    """
    return _parse_suffixed(text, _TIME_SUFFIXES, "duration")


def _parse_suffixed(text: str, table: dict[str, float], what: str) -> float:
    s = text.strip().lower().replace(" ", "")
    i = len(s)
    while i > 0 and not (s[i - 1].isdigit() or s[i - 1] == "."):
        i -= 1
    number, suffix = s[:i], s[i:]
    if not number:
        raise ValueError(f"cannot parse {what}: {text!r}")
    try:
        value = float(number)
    except ValueError:
        raise ValueError(f"cannot parse {what}: {text!r}") from None
    if not suffix:
        return value
    try:
        return value * table[suffix]
    except KeyError:
        raise ValueError(
            f"unknown unit {suffix!r} in {text!r}; one of {sorted(table)}"
        ) from None


def fmt_bytes(nbytes: float) -> str:
    """Human-readable decimal rendering of a byte count.

    >>> fmt_bytes(112e9)
    '112.00 GB'
    """
    for unit, name in ((PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(nbytes) >= unit:
            return f"{nbytes / unit:.2f} {name}"
    return f"{nbytes:.0f} B"


def fmt_time(seconds: float) -> str:
    """Human-readable rendering of a duration in seconds.

    >>> fmt_time(1120)
    '18.67 min'
    """
    if abs(seconds) >= DAY:
        return f"{seconds / DAY:.2f} d"
    if abs(seconds) >= HOUR:
        return f"{seconds / HOUR:.2f} h"
    if abs(seconds) >= MINUTE:
        return f"{seconds / MINUTE:.2f} min"
    return f"{seconds:.2f} s"


def fmt_rate(bytes_per_s: float) -> str:
    """Human-readable rendering of a bandwidth.

    >>> fmt_rate(100e6)
    '100.00 MB/s'
    """
    return fmt_bytes(bytes_per_s) + "/s"
