"""Checkpoint-interval policy: online MTTI estimation + Daly's optimum.

The paper fixes the local checkpoint interval from Daly's estimate with a
*known* MTTI (Table 4).  Production systems don't know their MTTI — they
estimate it from observed interrupts.  This module provides that loop:

* :class:`OnlineMTTIEstimator` — maximum-likelihood MTTI for exponential
  interarrivals (total observed time / failures) blended with a prior so
  the estimate is usable before the first failure;
* :class:`DalyIntervalAdvisor` — maps the current estimate and commit time
  to Daly's higher-order optimal interval, clamped to sane bounds;
* :class:`AdaptiveScheduler` — the runtime-facing object: feed it
  progress and failures, ask it ``should_checkpoint(now)``.

Used by ``examples/adaptive_checkpointing.py`` and usable with
:class:`~repro.ckpt.multilevel.MultilevelCheckpointer` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import daly

__all__ = ["OnlineMTTIEstimator", "DalyIntervalAdvisor", "AdaptiveScheduler"]


@dataclass
class OnlineMTTIEstimator:
    """MLE of the mean time to interrupt with a conjugate-style prior.

    For exponential interarrivals the MLE is ``observed_time / failures``.
    We add a prior of ``prior_weight`` pseudo-failures at ``prior_mtti``
    (equivalent to a Gamma prior on the rate), so the estimate starts at
    ``prior_mtti`` and converges to the empirical value as failures accrue.
    """

    prior_mtti: float
    prior_weight: float = 1.0
    observed_time: float = 0.0
    failures: int = 0

    def __post_init__(self) -> None:
        if self.prior_mtti <= 0:
            raise ValueError("prior_mtti must be positive")
        if self.prior_weight <= 0:
            raise ValueError("prior_weight must be positive")

    def observe_time(self, dt: float) -> None:
        """Record ``dt`` seconds of exposure (failure-free or not)."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        self.observed_time += dt

    def observe_failure(self) -> None:
        """Record one interrupt."""
        self.failures += 1

    @property
    def mtti(self) -> float:
        """Current posterior-mean-style MTTI estimate."""
        total_time = self.observed_time + self.prior_weight * self.prior_mtti
        total_failures = self.failures + self.prior_weight
        return total_time / total_failures


@dataclass
class DalyIntervalAdvisor:
    """Daly-optimal local checkpoint interval for a live MTTI estimate.

    ``commit_time`` is the measured local checkpoint commit time.  The
    recommendation is clamped to ``[min_interval, max_interval]`` so a
    wild early estimate cannot drive the system into pathological
    checkpoint storms or droughts.
    """

    commit_time: float
    min_interval: float = 1.0
    max_interval: float = float("inf")

    def __post_init__(self) -> None:
        if self.commit_time <= 0:
            raise ValueError("commit_time must be positive")
        if not 0 < self.min_interval <= self.max_interval:
            raise ValueError("need 0 < min_interval <= max_interval")

    def recommend(self, mtti: float) -> float:
        """Daly's higher-order optimal interval at the given MTTI."""
        if mtti <= 0:
            raise ValueError("mtti must be positive")
        tau = float(daly.daly_interval(self.commit_time, mtti))
        return min(max(tau, self.min_interval), self.max_interval)


@dataclass
class AdaptiveScheduler:
    """Decides when the application should take its next checkpoint.

    Wire-up::

        sched = AdaptiveScheduler(
            estimator=OnlineMTTIEstimator(prior_mtti=1800.0),
            advisor=DalyIntervalAdvisor(commit_time=7.5),
        )
        ...
        sched.tick(dt)                # every iteration: report elapsed time
        if sched.should_checkpoint():
            cr.checkpoint(...); sched.notify_checkpoint()
        ...
        # on failure/restart:
        sched.notify_failure()
    """

    estimator: OnlineMTTIEstimator
    advisor: DalyIntervalAdvisor
    _since_checkpoint: float = 0.0
    intervals_used: list[float] = field(default_factory=list)

    def tick(self, dt: float) -> None:
        """Report ``dt`` seconds of application progress."""
        self.estimator.observe_time(dt)
        self._since_checkpoint += dt

    @property
    def current_interval(self) -> float:
        """The interval currently in force."""
        return self.advisor.recommend(self.estimator.mtti)

    def should_checkpoint(self) -> bool:
        """Whether enough work has accumulated since the last checkpoint."""
        return self._since_checkpoint >= self.current_interval

    def notify_checkpoint(self) -> None:
        """Reset the work accumulator after a checkpoint commits."""
        self.intervals_used.append(self._since_checkpoint)
        self._since_checkpoint = 0.0

    def notify_failure(self) -> None:
        """Record an interrupt; the estimator shortens its MTTI."""
        self.estimator.observe_failure()
        self._since_checkpoint = 0.0
