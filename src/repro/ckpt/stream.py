"""Block-framed compressed streams (Section 4.2.2 / 4.3 data path).

The NDP compresses checkpoints in *blocks* so compression can overlap the
network write, and the host decompresses blocks *concurrently* on restore
("each page ... sent to a different core", Section 4.3).  This module is
that container format plus its pipelined/parallel processors:

* :func:`compress_stream` — frame a payload into independently-compressed
  blocks.
* :func:`decompress_stream` — sequential decode.
* :func:`parallel_decompress` — thread-pool decode.  zlib/bz2/lzma release
  the GIL inside their C cores, so this achieves real parallel speedup,
  mirroring the paper's multi-core host decompression.
"""

from __future__ import annotations

import struct
from concurrent.futures import ThreadPoolExecutor

from ..compression.codecs import Codec

__all__ = [
    "compress_stream",
    "decompress_stream",
    "parallel_decompress",
    "iter_compressed_blocks",
    "DEFAULT_BLOCK_SIZE",
]

_MAGIC = b"RPBS"
DEFAULT_BLOCK_SIZE = 1 << 20  # 1 MiB blocks


def iter_compressed_blocks(payload: bytes, codec: Codec, block_size: int = DEFAULT_BLOCK_SIZE):
    """Yield ``(uncompressed_len, compressed_bytes)`` per block.

    This generator is the producer side of the NDP's compress-while-write
    pipeline: the drain daemon pulls one block at a time and ships it to
    the NIC (I/O store) while the next block compresses.
    """
    if block_size < 1024:
        raise ValueError("block_size must be >= 1024")
    for off in range(0, len(payload), block_size):
        chunk = payload[off : off + block_size]
        yield len(chunk), codec.compress(chunk)


def compress_stream(payload: bytes, codec: Codec, block_size: int = DEFAULT_BLOCK_SIZE) -> bytes:
    """Frame ``payload`` into the block-stream container.

    Layout: magic, block size, total uncompressed size, block count, then
    per block ``[usize u32][csize u32][cdata]``.
    """
    blocks = list(iter_compressed_blocks(payload, codec, block_size))
    parts = [_MAGIC, struct.pack("<IQI", block_size, len(payload), len(blocks))]
    for usize, cdata in blocks:
        parts.append(struct.pack("<II", usize, len(cdata)))
        parts.append(cdata)
    return b"".join(parts)


def _parse_frames(stream: bytes) -> tuple[int, list[bytes]]:
    if stream[:4] != _MAGIC:
        raise ValueError("not a block-compressed stream (bad magic)")
    _, total, count = struct.unpack_from("<IQI", stream, 4)
    off = 4 + 16
    frames: list[bytes] = []
    expected = 0
    for _ in range(count):
        usize, csize = struct.unpack_from("<II", stream, off)
        off += 8
        frames.append(stream[off : off + csize])
        if len(frames[-1]) != csize:
            raise ValueError("truncated block stream")
        off += csize
        expected += usize
    if expected != total:
        raise ValueError(f"block sizes sum to {expected}, header says {total}")
    return total, frames


def decompress_stream(stream: bytes, codec: Codec) -> bytes:
    """Sequentially decode a block stream."""
    total, frames = _parse_frames(stream)
    out = b"".join(codec.decompress(f) for f in frames)
    if len(out) != total:
        raise ValueError(f"decoded {len(out)} bytes, expected {total}")
    return out


def parallel_decompress(stream: bytes, codec: Codec, workers: int = 4) -> bytes:
    """Decode blocks concurrently on a thread pool (host-side restore).

    Matches Section 4.3's pipelined restore: blocks are independent, the
    stdlib codecs release the GIL, so ``workers`` threads give near-linear
    speedup for CPU-bound codecs.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    total, frames = _parse_frames(stream)
    if workers == 1 or len(frames) <= 1:
        return decompress_stream(stream, codec)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        parts = list(pool.map(codec.decompress, frames))
    out = b"".join(parts)
    if len(out) != total:
        raise ValueError(f"decoded {len(out)} bytes, expected {total}")
    return out
