"""Block-framed compressed streams (Section 4.2.2 / 4.3 data path).

The NDP compresses checkpoints in *blocks* so compression can overlap the
network write, and the host decompresses blocks *concurrently* on restore
("each page ... sent to a different core", Section 4.3).  This module is
that container format plus its pipelined/parallel processors:

* :func:`iter_frames` — the streaming producer: yields wire-format frames
  (header first, then one frame per compressed block) from ``memoryview``
  slices of the payload, so nothing is ever concatenated or copied on the
  way in.  With ``workers > 1`` blocks compress on a thread pool behind a
  bounded in-flight window: the producer stays at most ``workers + 2``
  blocks ahead of the consumer (backpressure), and frames still come out
  in order.
* :func:`compress_stream` — materialize the frames into one bytes object.
* :func:`decompress_stream` — sequential decode.
* :func:`parallel_decompress` — thread-pool decode.  zlib/bz2/lzma release
  the GIL inside their C cores, so this achieves real parallel speedup,
  mirroring the paper's multi-core host decompression.

Frames parse from a ``memoryview`` of the stream, so block payloads feed
the codec without intermediate copies on the way out either.
"""

from __future__ import annotations

import struct
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator

from ..compression.codecs import Codec
from ..obs import metrics as obs_metrics

# Block-granularity counters for the compression workers.  Updates are
# one lock + float add per (1 MiB) block — invisible next to the codec —
# and give the registry a live view of how much data the stream layer
# has pushed through in each direction.
_BLOCKS = obs_metrics.REGISTRY.counter(
    "stream_blocks_total", "blocks processed by the stream codec layer"
)
_BYTES = obs_metrics.REGISTRY.counter(
    "stream_bytes_total", "uncompressed bytes through the stream codec layer"
)

__all__ = [
    "compress_stream",
    "decompress_stream",
    "parallel_decompress",
    "iter_compressed_blocks",
    "iter_frames",
    "DEFAULT_BLOCK_SIZE",
]

_MAGIC = b"RPBS"
DEFAULT_BLOCK_SIZE = 1 << 20  # 1 MiB blocks


def iter_compressed_blocks(payload, codec: Codec, block_size: int = DEFAULT_BLOCK_SIZE):
    """Yield ``(uncompressed_len, compressed_bytes)`` per block.

    This generator is the producer side of the NDP's compress-while-write
    pipeline: the drain daemon pulls one block at a time and ships it to
    the NIC (I/O store) while the next block compresses.  Blocks are
    ``memoryview`` slices — no payload copies.
    """
    if block_size < 1024:
        raise ValueError("block_size must be >= 1024")
    mv = memoryview(payload)
    for off in range(0, len(mv), block_size):
        chunk = mv[off : off + block_size]
        yield len(chunk), codec.compress(chunk)


def iter_frames(
    payload,
    codec: Codec,
    block_size: int = DEFAULT_BLOCK_SIZE,
    workers: int = 1,
) -> Iterator[bytes]:
    """Yield the container's wire frames: header, then one per block.

    The concatenation of the frames is exactly :func:`compress_stream`'s
    output, for any ``workers`` — parallel compression preserves frame
    order.  The payload is consumed as ``memoryview`` slices and at most
    ``workers + 2`` blocks are in flight at once, so memory stays bounded
    no matter how slowly the consumer drains (this is the backpressure
    that keeps the NDP drain from buffering a whole checkpoint).
    """
    if block_size < 1024:
        raise ValueError("block_size must be >= 1024")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    mv = memoryview(payload)
    total = len(mv)
    nblocks = (total + block_size - 1) // block_size
    yield _MAGIC + struct.pack("<IQI", block_size, total, nblocks)
    chunks = (mv[off : off + block_size] for off in range(0, total, block_size))
    if workers == 1 or nblocks <= 1:
        for chunk in chunks:
            cdata = codec.compress(chunk)
            _BLOCKS.inc(direction="compress")
            _BYTES.inc(len(chunk), direction="compress")
            yield struct.pack("<II", len(chunk), len(cdata)) + cdata
        return
    with ThreadPoolExecutor(max_workers=workers) as pool:
        window: deque = deque()
        for chunk in chunks:
            window.append((len(chunk), pool.submit(codec.compress, chunk)))
            if len(window) > workers + 1:
                usize, fut = window.popleft()
                cdata = fut.result()
                _BLOCKS.inc(direction="compress")
                _BYTES.inc(usize, direction="compress")
                yield struct.pack("<II", usize, len(cdata)) + cdata
        while window:
            usize, fut = window.popleft()
            cdata = fut.result()
            _BLOCKS.inc(direction="compress")
            _BYTES.inc(usize, direction="compress")
            yield struct.pack("<II", usize, len(cdata)) + cdata


def compress_stream(
    payload,
    codec: Codec,
    block_size: int = DEFAULT_BLOCK_SIZE,
    workers: int = 1,
) -> bytes:
    """Frame ``payload`` into the block-stream container.

    Layout: magic, block size, total uncompressed size, block count, then
    per block ``[usize u32][csize u32][cdata]``.  Output is identical for
    any ``workers``.
    """
    return b"".join(iter_frames(payload, codec, block_size, workers))


def _parse_frames(stream) -> tuple[int, list]:
    mv = memoryview(stream)
    if bytes(mv[:4]) != _MAGIC:
        raise ValueError("not a block-compressed stream (bad magic)")
    _, total, count = struct.unpack_from("<IQI", mv, 4)
    off = 4 + 16
    frames: list = []
    expected = 0
    for _ in range(count):
        usize, csize = struct.unpack_from("<II", mv, off)
        off += 8
        frames.append(mv[off : off + csize])
        if len(frames[-1]) != csize:
            raise ValueError("truncated block stream")
        off += csize
        expected += usize
    if expected != total:
        raise ValueError(f"block sizes sum to {expected}, header says {total}")
    return total, frames


def decompress_stream(stream, codec: Codec) -> bytes:
    """Sequentially decode a block stream."""
    total, frames = _parse_frames(stream)
    out = b"".join(codec.decompress(f) for f in frames)
    if len(out) != total:
        raise ValueError(f"decoded {len(out)} bytes, expected {total}")
    _BLOCKS.inc(len(frames), direction="decompress")
    _BYTES.inc(total, direction="decompress")
    return out


def parallel_decompress(stream, codec: Codec, workers: int = 4) -> bytes:
    """Decode blocks concurrently on a thread pool (host-side restore).

    Matches Section 4.3's pipelined restore: blocks are independent, the
    stdlib codecs release the GIL, so ``workers`` threads give near-linear
    speedup for CPU-bound codecs.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    total, frames = _parse_frames(stream)
    if workers == 1 or len(frames) <= 1:
        return decompress_stream(stream, codec)
    with ThreadPoolExecutor(max_workers=workers) as pool:
        parts = list(pool.map(codec.decompress, frames))
    out = b"".join(parts)
    if len(out) != total:
        raise ValueError(f"decoded {len(out)} bytes, expected {total}")
    _BLOCKS.inc(len(frames), direction="decompress")
    _BYTES.inc(total, direction="decompress")
    return out
