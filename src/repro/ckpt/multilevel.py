"""The multilevel checkpointer: the library's SCR-style front door.

:class:`MultilevelCheckpointer` orchestrates the full Section 4.2 data
path over real files:

* every :meth:`checkpoint` commits per-rank context files to the local
  store (pausing the NDP drain for the duration — the host gets all NVM
  bandwidth), optionally mirroring every ``partner_every``-th checkpoint
  to a partner store;
* in **ndp** mode the background :class:`~repro.ckpt.ndp_daemon.NDPDrainDaemon`
  compresses and pushes checkpoints to the I/O store off the critical
  path; in **host** mode every ``io_every``-th checkpoint is written to
  I/O synchronously (compressed inline), reproducing the conventional
  configuration the paper compares against;
* :meth:`restart` runs the local -> partner -> I/O recovery protocol,
  pausing the drain while reading from I/O.

Usage::

    with MultilevelCheckpointer("myapp", local, io, mode="ndp",
                                codec=make_codec("gzip", 1)) as cr:
        for step in range(n):
            state = compute(...)
            cr.checkpoint({0: serialize(state)}, position=step)
    # after a crash:
    result = cr.restart()
"""

from __future__ import annotations

import threading

from ..compression.codecs import Codec
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .async_local import AsyncLocalWriter
from .backends import IOStore, LocalStore, PartnerStore
from .format import ContextHeader, make_header
from .metrics import RuntimeMetrics
from .ndp_daemon import NDPDrainDaemon
from .restart import RecoveryResult, recover
from .stream import DEFAULT_BLOCK_SIZE, compress_stream

__all__ = ["MultilevelCheckpointer"]

# Registry instruments shared by every checkpointer, labelled per call.
_CHECKPOINTS = obs_metrics.REGISTRY.counter(
    "cr_checkpoints_total", "coordinated checkpoints committed"
)
_RESTORES = obs_metrics.REGISTRY.counter(
    "cr_restores_total", "recoveries served, by storage level"
)
_BYTES = obs_metrics.REGISTRY.counter(
    "cr_bytes_total", "payload bytes written on the critical path, by level"
)


class MultilevelCheckpointer:
    """Multilevel C/R orchestrator (host or NDP mode).

    Parameters
    ----------
    app_id:
        Application identity used in store paths and metadata.
    local, io:
        Node-local and global-I/O stores.
    partner:
        Optional partner-node store.
    mode:
        ``"ndp"`` (background drain, the paper's proposal) or ``"host"``
        (synchronous I/O pushes, the conventional baseline).
    codec:
        Compression for the I/O level (both modes); local/partner copies
        are never compressed (Section 3.5: local bandwidth outruns any
        achievable compression rate).
    io_every:
        Host mode: push every ``io_every``-th checkpoint to I/O
        (the locally-saved : I/O-saved ratio).
    partner_every:
        Mirror every ``partner_every``-th checkpoint to the partner store
        (0 disables).
    block_size:
        Compression block size for the streamed format.
    delta_every:
        NDP mode only: store ``delta_every - 1`` of every ``delta_every``
        drains as XOR-deltas against the last full drain (0 disables; see
        :class:`~repro.ckpt.ndp_daemon.NDPDrainDaemon`).
    local_async:
        Commit local checkpoints on a background writer thread
        (double-buffered, one in flight): :meth:`checkpoint` returns as
        soon as the payloads are staged, hiding ``delta_L`` too.  A crash
        before the background commit lands falls back to the previous
        checkpoint — the same guarantee a crash mid-blocking-write gives.
        Requires ndp mode.
    """

    def __init__(
        self,
        app_id: str,
        local: LocalStore,
        io: IOStore,
        partner: PartnerStore | None = None,
        mode: str = "ndp",
        codec: Codec | None = None,
        io_every: int = 1,
        partner_every: int = 1,
        block_size: int = DEFAULT_BLOCK_SIZE,
        delta_every: int = 0,
        local_async: bool = False,
    ):
        if mode not in ("ndp", "host"):
            raise ValueError(f"mode must be 'ndp' or 'host': {mode!r}")
        if io_every < 1:
            raise ValueError("io_every must be >= 1")
        if partner_every < 0:
            raise ValueError("partner_every must be >= 0")
        if delta_every and mode != "ndp":
            raise ValueError("delta_every requires ndp mode (the drain daemon)")
        if local_async and mode != "ndp":
            raise ValueError("local_async requires ndp mode")
        self.app_id = app_id
        self.local = local
        self.io = io
        self.partner = partner
        self.mode = mode
        self.codec = codec
        self.io_every = io_every
        self.partner_every = partner_every
        self.block_size = block_size
        self.metrics = RuntimeMetrics()
        obs_metrics.register_runtime_metrics(self.metrics, app=app_id, mode=mode)
        self._lock = threading.Lock()
        self._next_id = self._initial_id()
        self.daemon: NDPDrainDaemon | None = None
        self._async_writer: AsyncLocalWriter | None = None
        if mode == "ndp":
            self.daemon = NDPDrainDaemon(
                app_id,
                local,
                io,
                codec=codec,
                block_size=block_size,
                delta_every=delta_every,
            )
            if local_async:
                self._async_writer = AsyncLocalWriter(
                    app_id,
                    local,
                    pre_commit=self.daemon.pause,
                    post_commit=self.daemon.resume,
                )

    def _initial_id(self) -> int:
        """Resume numbering after the newest checkpoint on any level."""
        ids = [self.local.latest(self.app_id), self.io.latest(self.app_id)]
        if self.partner is not None:
            ids.append(self.partner.latest(self.app_id))
        known = [i for i in ids if i is not None]
        return (max(known) + 1) if known else 1

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "MultilevelCheckpointer":
        """Start the NDP drain daemon (no-op in host mode)."""
        if self.daemon is not None:
            self.daemon.start()
        return self

    def close(self, flush: bool = True, timeout: float = 60.0) -> None:
        """Stop the daemon, optionally waiting for pending drains."""
        if self._async_writer is not None:
            self._async_writer.drain(timeout)
        if self.daemon is not None:
            if flush:
                self.daemon.wait_idle(timeout)
            self.daemon.stop()

    def __enter__(self) -> "MultilevelCheckpointer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- checkpoint ---------------------------------------------------------------

    def checkpoint(self, payloads: dict[int, bytes], position: float = 0.0) -> int:
        """Commit one coordinated checkpoint; returns its id.

        ``payloads`` maps rank -> serialized state.  The call blocks for
        exactly what the host pays in each mode: the local (and partner)
        writes always; the compressed I/O push only in host mode on
        ``io_every`` boundaries.
        """
        if not payloads:
            raise ValueError("need at least one rank payload")
        with self._lock:
            ckpt_id = self._next_id
            self._next_id += 1

        files = {
            rank: (self._header(rank, ckpt_id, data, position), data)
            for rank, data in payloads.items()
        }
        nbytes = sum(len(d) for d in payloads.values())
        with obs_trace.span(
            "ckpt",
            "commit",
            label=f"ckpt-{ckpt_id}",
            ckpt=ckpt_id,
            ranks=len(files),
            bytes=nbytes,
            mode=self.mode,
        ):
            if self._async_writer is not None:
                # Background commit: stage and return.  The writer pauses the
                # drain around the actual NVM write itself.
                with self.metrics.timed("local"):
                    self._async_writer.submit(ckpt_id, files)
            else:
                if self.daemon is not None:
                    self.daemon.pause()  # host takes all NVM bandwidth
                try:
                    with self.metrics.timed("local"):
                        self.local.write_checkpoint(self.app_id, ckpt_id, files)
                finally:
                    if self.daemon is not None:
                        self.daemon.resume()
            self.metrics.checkpoints += 1
            self.metrics.bytes_local += nbytes
            _CHECKPOINTS.inc(app=self.app_id, mode=self.mode)
            _BYTES.inc(nbytes, app=self.app_id, level="local")

            if (
                self.partner is not None
                and self.partner_every > 0
                and ckpt_id % self.partner_every == 0
            ):
                with obs_trace.span("ckpt", "partner-push", ckpt=ckpt_id), self.metrics.timed(
                    "partner"
                ):
                    self.partner.write_checkpoint(self.app_id, ckpt_id, files)
                self.metrics.bytes_partner += nbytes
                _BYTES.inc(nbytes, app=self.app_id, level="partner")

            if self.mode == "host" and ckpt_id % self.io_every == 0:
                with obs_trace.span("ckpt", "io-push", ckpt=ckpt_id), self.metrics.timed("io"):
                    self._host_push_io(ckpt_id, payloads, position)
                self.metrics.bytes_io_host += nbytes
                _BYTES.inc(nbytes, app=self.app_id, level="io_host")
        return ckpt_id

    def _host_push_io(
        self, ckpt_id: int, payloads: dict[int, bytes], position: float
    ) -> None:
        """Synchronous (blocking) compressed push to the I/O store."""
        for rank, data in sorted(payloads.items()):
            if self.codec is not None:
                out = compress_stream(data, self.codec, self.block_size)
                codec_name = self.codec.name
            else:
                out, codec_name = data, None
            header = make_header(
                app_id=self.app_id,
                rank=rank,
                ckpt_id=ckpt_id,
                payload=out,
                position=position,
                uncompressed_size=len(data),
                codec=codec_name,
            )
            self.io.stage_rank_file(self.app_id, ckpt_id, rank, header, out)
        self.io.commit_checkpoint(self.app_id, ckpt_id)

    def _header(
        self, rank: int, ckpt_id: int, data: bytes, position: float
    ) -> ContextHeader:
        return make_header(
            app_id=self.app_id,
            rank=rank,
            ckpt_id=ckpt_id,
            payload=data,
            position=position,
        )

    # -- restart -------------------------------------------------------------------

    def restart(self, decompress_workers: int = 4) -> RecoveryResult:
        """Recover the newest usable checkpoint (local -> partner -> I/O).

        Pauses the drain daemon while recovery may be reading from the I/O
        store (Section 4.2.3), then resumes it.
        """
        stores = [self.local]
        if self.partner is not None:
            stores.append(self.partner)
        stores.append(self.io)
        if self._async_writer is not None:
            self._async_writer.drain()  # recovery must not race a commit
        if self.daemon is not None:
            self.daemon.pause()
        try:
            with obs_trace.span("restore", "restart", app=self.app_id) as sp:
                with self.metrics.timed("restore"):
                    result = recover(
                        self.app_id, stores, decompress_workers=decompress_workers
                    )
                sp.set(ckpt=result.ckpt_id, level=result.level)
            self.metrics.restores += 1
            _RESTORES.inc(app=self.app_id, level=result.level)
            return result
        finally:
            if self.daemon is not None:
                self.daemon.resume()

    # -- introspection ---------------------------------------------------------------

    def flush_to_io(self, timeout: float = 60.0) -> bool:
        """Wait until the drain daemon has nothing left to push."""
        if self._async_writer is not None and not self._async_writer.drain(timeout):
            return False
        if self.daemon is None:
            return True
        return self.daemon.wait_idle(timeout)
