"""Runtime telemetry for the multilevel checkpointer.

Collects the quantities the paper's model is about, measured live:
host-blocked wall time per activity (the critical-path cost NDP is
supposed to hide), checkpoint counts and bytes per level.  The MD example
uses this to show the NDP-vs-host contrast on real data.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["RuntimeMetrics", "StageCounter"]

#: The clock both ``timed`` context managers charge from.  Monotonic by
#: contract (``perf_counter`` is a monotonic clock with the highest
#: available resolution): elapsed time can never go negative under
#: system clock adjustments, and the ``finally`` blocks below charge it
#: even when the timed body raises.
_clock = time.perf_counter


@dataclass
class StageCounter:
    """Byte/second throughput counter for one stage of a data pipeline.

    The NDP drain and restore paths account each stage (compress, write,
    read, decompress) separately so the achieved pipeline rate can be
    compared against the model's ``min(io_bw / (1 - factor),
    compress_rate)`` drain-rate bound stage by stage.
    """

    bytes: int = 0
    seconds: float = 0.0
    ops: int = 0

    def add(self, nbytes: int, seconds: float) -> None:
        """Charge ``nbytes`` processed in ``seconds`` to this stage."""
        self.bytes += nbytes
        self.seconds += seconds
        self.ops += 1

    @contextmanager
    def timed(self, nbytes: int) -> Iterator[None]:
        """Context manager charging elapsed wall time for ``nbytes``.

        The time is charged even when the body raises — an aborted write
        still consumed the seconds, and dropping them would inflate the
        reported rate.
        """
        t0 = _clock()
        try:
            yield
        finally:
            self.add(nbytes, _clock() - t0)

    @property
    def rate(self) -> float:
        """Throughput in bytes/second.

        0.0 before anything was charged; ``inf`` when bytes were charged
        with no measurable time (clock resolution, or ``add(n, 0.0)``) —
        explicitly "unmeasurably fast", never a silent 0.0 that would
        read as "no throughput".
        """
        if self.seconds <= 0.0:
            return math.inf if self.bytes > 0 else 0.0
        return self.bytes / self.seconds

    def as_dict(self) -> dict[str, float]:
        """Plain-dict export consumed by the ``repro.obs`` registry."""
        return {
            "bytes": self.bytes,
            "seconds": self.seconds,
            "ops": self.ops,
            "rate": self.rate,
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        return f"{self.bytes}B in {self.seconds:.3f}s ({self.rate / 1e6:.2f} MB/s, {self.ops} ops)"


@dataclass
class RuntimeMetrics:
    """Host-visible cost counters for one checkpointer instance.

    Attributes
    ----------
    blocked_seconds:
        Wall seconds the application thread spent inside blocking C/R
        operations, keyed by activity (``"local"``, ``"partner"``,
        ``"io"``, ``"restore"``).
    checkpoints:
        Checkpoints committed (locally).
    bytes_local, bytes_partner, bytes_io_host:
        Payload bytes written on the critical path per level
        (``bytes_io_host`` counts only *host-mode* synchronous pushes —
        NDP drains are background and tracked by the daemon's own stats).
    restores:
        Recoveries served.
    """

    blocked_seconds: dict[str, float] = field(
        default_factory=lambda: {"local": 0.0, "partner": 0.0, "io": 0.0, "restore": 0.0}
    )
    checkpoints: int = 0
    restores: int = 0
    bytes_local: int = 0
    bytes_partner: int = 0
    bytes_io_host: int = 0

    @contextmanager
    def timed(self, activity: str) -> Iterator[None]:
        """Context manager charging elapsed wall time to ``activity``.

        The activity is validated *before* the clock starts (a typo can
        never corrupt another bucket) and time is charged in a
        ``finally`` — an exception mid-operation still blocked the host
        for however long it ran.
        """
        if activity not in self.blocked_seconds:
            raise KeyError(f"unknown activity {activity!r}")
        t0 = _clock()
        try:
            yield
        finally:
            self.blocked_seconds[activity] += _clock() - t0

    @property
    def total_blocked(self) -> float:
        """Total host-blocked wall seconds across activities."""
        return sum(self.blocked_seconds.values())

    def as_dict(self) -> dict[str, object]:
        """Plain-dict export consumed by the ``repro.obs`` registry."""
        return {
            "blocked_seconds": dict(self.blocked_seconds),
            "total_blocked": self.total_blocked,
            "checkpoints": self.checkpoints,
            "restores": self.restores,
            "bytes_local": self.bytes_local,
            "bytes_partner": self.bytes_partner,
            "bytes_io_host": self.bytes_io_host,
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = ", ".join(
            f"{k}={v:.3f}s" for k, v in self.blocked_seconds.items() if v > 0
        )
        return (
            f"{self.checkpoints} checkpoints, {self.restores} restores, "
            f"blocked {self.total_blocked:.3f}s ({parts or 'none'})"
        )
