"""Checkpoint store inspection and verification (fsck for checkpoints).

Operational tooling a facility actually needs around a C/R runtime:

* :func:`inventory` — what checkpoints exist on which levels, their ids,
  positions, sizes, codecs, and delta relationships;
* :func:`verify_store` — CRC-verify every context file of every committed
  checkpoint, reporting (not raising on) corruption;
* :func:`deep_verify` — additionally reconstruct payloads (decompress,
  apply deltas) to prove recoverability end-to-end.

Exposed on the CLI as ``python -m repro ckpt ls|verify <root dirs>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .backends import DirectoryStore
from .format import CorruptCheckpointError
from .restart import NoCheckpointError, recover

__all__ = [
    "CheckpointInfo",
    "VerifyReport",
    "inventory",
    "verify_store",
    "deep_verify",
]


@dataclass(frozen=True)
class CheckpointInfo:
    """Summary of one committed checkpoint on one store."""

    level: str
    ckpt_id: int
    ranks: int
    stored_bytes: int
    uncompressed_bytes: int
    position: float
    codec: str | None
    delta_base: int | None
    locked: bool = False

    @property
    def stored_factor(self) -> float:
        """Achieved on-store reduction (compression and/or delta)."""
        if self.uncompressed_bytes == 0:
            return 0.0
        return 1.0 - self.stored_bytes / self.uncompressed_bytes


def inventory(app_id: str, store: DirectoryStore) -> list[CheckpointInfo]:
    """Enumerate committed checkpoints with their metadata.

    Unreadable checkpoints still appear (with zeroed sizes) so operators
    see that something is wrong rather than nothing at all.
    """
    out: list[CheckpointInfo] = []
    locked = set(getattr(store, "locked", lambda _app: [])(app_id) or [])
    for ckpt_id in store.committed(app_id):
        try:
            files = store.read_checkpoint(app_id, ckpt_id, verify=False)
        except (FileNotFoundError, CorruptCheckpointError, OSError):
            out.append(
                CheckpointInfo(
                    level=store.level,
                    ckpt_id=ckpt_id,
                    ranks=0,
                    stored_bytes=0,
                    uncompressed_bytes=0,
                    position=float("nan"),
                    codec=None,
                    delta_base=None,
                    locked=ckpt_id in locked,
                )
            )
            continue
        headers = [h for h, _ in files.values()]
        out.append(
            CheckpointInfo(
                level=store.level,
                ckpt_id=ckpt_id,
                ranks=len(files),
                stored_bytes=sum(h.payload_size for h in headers),
                uncompressed_bytes=sum(h.uncompressed_size for h in headers),
                position=headers[0].position,
                codec=headers[0].codec,
                delta_base=headers[0].delta_base,
                locked=ckpt_id in locked,
            )
        )
    return out


@dataclass
class VerifyReport:
    """Outcome of verifying one store.

    ``bad`` maps checkpoint id to the failure description; ``ok`` lists
    the checkpoints that passed.
    """

    level: str
    ok: list[int] = field(default_factory=list)
    bad: dict[int, str] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """True when every committed checkpoint verified."""
        return not self.bad

    def summary(self) -> str:
        """One-line result."""
        if self.healthy:
            return f"{self.level}: {len(self.ok)} checkpoint(s) verified OK"
        return (
            f"{self.level}: {len(self.ok)} OK, {len(self.bad)} BAD "
            f"({', '.join(f'{k}: {v}' for k, v in self.bad.items())})"
        )


def verify_store(app_id: str, store: DirectoryStore) -> VerifyReport:
    """CRC-verify every context file of every committed checkpoint."""
    report = VerifyReport(level=store.level)
    for ckpt_id in store.committed(app_id):
        try:
            store.read_checkpoint(app_id, ckpt_id, verify=True)
        except CorruptCheckpointError as exc:
            report.bad[ckpt_id] = f"corrupt: {exc}"
        except FileNotFoundError as exc:
            report.bad[ckpt_id] = f"missing: {exc}"
        except OSError as exc:
            report.bad[ckpt_id] = f"io error: {exc}"
        else:
            report.ok.append(ckpt_id)
    return report


def deep_verify(app_id: str, stores: list[DirectoryStore]) -> bool:
    """Prove end-to-end recoverability: run the actual recovery path.

    Returns True when :func:`repro.ckpt.restart.recover` succeeds —
    meaning at least one checkpoint decompresses, delta-reconstructs, and
    passes every integrity check.
    """
    try:
        recover(app_id, stores)
    except (NoCheckpointError, ValueError):
        return False
    return True


def discover_apps(root: Path | str) -> list[str]:
    """App ids present under a store root directory."""
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(
        p.name for p in root.iterdir() if p.is_dir() and (p / "MANIFEST.json").exists()
    )
