"""Storage backends for the multilevel C/R runtime.

Three directory-backed stores model the paper's three storage levels:

* :class:`LocalStore` — node-local NVM.  Holds at most ``capacity``
  checkpoints in FIFO order (the Section 4.2.1 circular buffer) with
  per-checkpoint drain locks (Section 4.2.2).
* :class:`PartnerStore` — a partner node's local storage (redundant copy).
* :class:`IOStore` — the global parallel file system, optionally
  bandwidth-throttled so examples exhibit realistic relative timings.

A checkpoint is one directory of per-rank context files committed
atomically via a manifest update (write-temp-then-rename), so readers
never observe partially-written checkpoints — the same invariant BLCR's
metadata provides.
"""

from __future__ import annotations

import json
import shutil
import threading
import time
from pathlib import Path

from .format import (
    ContextHeader,
    read_context_file,
    write_context_file,
    write_context_frames,
)

__all__ = ["DirectoryStore", "LocalStore", "PartnerStore", "IOStore"]

_MANIFEST = "MANIFEST.json"


class DirectoryStore:
    """A checkpoint store rooted at a directory.

    Layout: ``root/<app_id>/ckpt_<id>/rank_<r>.ctx`` plus a per-app
    ``MANIFEST.json`` listing committed checkpoint ids.  All public
    methods are thread-safe (one lock per store instance — the NDP drain
    daemon and the host touch stores concurrently).
    """

    level = "generic"

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # -- paths ---------------------------------------------------------------

    def _app_dir(self, app_id: str) -> Path:
        return self.root / app_id

    def _ckpt_dir(self, app_id: str, ckpt_id: int) -> Path:
        return self._app_dir(app_id) / f"ckpt_{ckpt_id:08d}"

    def _manifest_path(self, app_id: str) -> Path:
        return self._app_dir(app_id) / _MANIFEST

    # -- manifest ------------------------------------------------------------

    def _read_manifest(self, app_id: str) -> dict:
        path = self._manifest_path(app_id)
        if not path.exists():
            return {"committed": [], "locked": []}
        return json.loads(path.read_text())

    def _write_manifest(self, app_id: str, manifest: dict) -> None:
        path = self._manifest_path(app_id)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True))
        tmp.replace(path)

    # -- public API ------------------------------------------------------------

    def write_checkpoint(
        self,
        app_id: str,
        ckpt_id: int,
        files: dict[int, tuple[ContextHeader, bytes]],
    ) -> None:
        """Persist one checkpoint (all rank files), then commit it.

        The checkpoint becomes visible to readers only after every context
        file is on disk and the manifest rename lands.
        """
        if not files:
            raise ValueError("a checkpoint needs at least one rank file")
        for rank, (header, payload) in sorted(files.items()):
            self.stage_rank_file(app_id, ckpt_id, rank, header, payload)
        self.commit_checkpoint(app_id, ckpt_id)

    def stage_rank_file(
        self,
        app_id: str,
        ckpt_id: int,
        rank: int,
        header: ContextHeader,
        payload: bytes,
    ) -> None:
        """Write one rank's context file without committing the checkpoint.

        Staged files are invisible to readers until
        :meth:`commit_checkpoint` lands; the NDP drain daemon uses this to
        overlap compression of one rank with the (throttled) write of the
        previous one.
        """
        cdir = self._ckpt_dir(app_id, ckpt_id)
        cdir.mkdir(parents=True, exist_ok=True)
        self._write_file(cdir / f"rank_{rank:05d}.ctx", payload, header)

    def stage_rank_frames(
        self,
        app_id: str,
        ckpt_id: int,
        rank: int,
        frames,
        *,
        position: float = 0.0,
        uncompressed_size: int | None = None,
        codec: str | None = None,
        delta_base: int | None = None,
    ) -> ContextHeader:
        """Stream one rank's payload ``frames`` into a staged context file.

        The pipelined counterpart of :meth:`stage_rank_file`: ``frames``
        is an iterable of byte chunks (e.g. the block frames of
        :func:`repro.ckpt.stream.iter_frames`) written as they arrive, so
        the store never holds a rank payload in one piece.  Each chunk
        passes through the :meth:`_on_chunk` hook — the throttled
        :class:`IOStore` charges bandwidth per chunk, which is what lets a
        producer overlap compression with the sleep of the previous
        chunk's write.  Returns the finalized header.
        """
        cdir = self._ckpt_dir(app_id, ckpt_id)
        cdir.mkdir(parents=True, exist_ok=True)
        return write_context_frames(
            cdir / f"rank_{rank:05d}.ctx",
            frames,
            app_id=app_id,
            rank=rank,
            ckpt_id=ckpt_id,
            position=position,
            uncompressed_size=uncompressed_size,
            codec=codec,
            delta_base=delta_base,
            on_chunk=self._on_chunk,
        )

    def commit_checkpoint(self, app_id: str, ckpt_id: int) -> None:
        """Atomically publish a fully-staged checkpoint."""
        with self._lock:
            manifest = self._read_manifest(app_id)
            if ckpt_id not in manifest["committed"]:
                manifest["committed"].append(ckpt_id)
                manifest["committed"].sort()
            self._write_manifest(app_id, manifest)
            self._post_commit(app_id)

    def read_checkpoint(
        self, app_id: str, ckpt_id: int, verify: bool = True
    ) -> dict[int, tuple[ContextHeader, bytes]]:
        """Load all rank files of a committed checkpoint."""
        with self._lock:
            if ckpt_id not in self.committed(app_id):
                raise FileNotFoundError(
                    f"checkpoint {ckpt_id} of {app_id!r} not committed on {self.level}"
                )
            cdir = self._ckpt_dir(app_id, ckpt_id)
            out: dict[int, tuple[ContextHeader, bytes]] = {}
            for path in sorted(cdir.glob("rank_*.ctx")):
                header, payload = read_context_file(path, verify=verify)
                out[header.rank] = (header, payload)
            if not out:
                raise FileNotFoundError(
                    f"checkpoint {ckpt_id} of {app_id!r} is committed but has "
                    f"no rank files on {self.level} (directory lost?)"
                )
            return out

    def rank_files(self, app_id: str, ckpt_id: int) -> list[Path]:
        """Paths of a committed checkpoint's rank files, rank order.

        Raises the same :class:`FileNotFoundError` as
        :meth:`read_checkpoint` for uncommitted or file-less checkpoints.
        """
        with self._lock:
            if ckpt_id not in self.committed(app_id):
                raise FileNotFoundError(
                    f"checkpoint {ckpt_id} of {app_id!r} not committed on {self.level}"
                )
            paths = sorted(self._ckpt_dir(app_id, ckpt_id).glob("rank_*.ctx"))
            if not paths:
                raise FileNotFoundError(
                    f"checkpoint {ckpt_id} of {app_id!r} is committed but has "
                    f"no rank files on {self.level} (directory lost?)"
                )
            return paths

    def read_rank_file(
        self, app_id: str, ckpt_id: int, rank: int, verify: bool = True
    ) -> tuple[ContextHeader, bytes]:
        """Load a single rank file of a committed checkpoint.

        Restore uses this (via :meth:`iter_rank_files`) so at most one
        rank's payload is resident while a checkpoint reconstructs.
        """
        with self._lock:
            if ckpt_id not in self.committed(app_id):
                raise FileNotFoundError(
                    f"checkpoint {ckpt_id} of {app_id!r} not committed on {self.level}"
                )
            path = self._ckpt_dir(app_id, ckpt_id) / f"rank_{rank:05d}.ctx"
            return read_context_file(path, verify=verify)

    def iter_rank_files(self, app_id: str, ckpt_id: int, verify: bool = True):
        """Yield ``(header, payload)`` per rank of a committed checkpoint.

        Validates the commit eagerly (same errors as
        :meth:`read_checkpoint`) but reads lazily, one file per step and
        outside the store lock, so a slow consumer never serializes
        concurrent store traffic and never holds more than one rank file.
        """
        paths = self.rank_files(app_id, ckpt_id)

        def _iter():
            for path in paths:
                yield read_context_file(path, verify=verify)

        return _iter()

    def committed(self, app_id: str) -> list[int]:
        """Committed checkpoint ids, ascending."""
        with self._lock:
            return list(self._read_manifest(app_id)["committed"])

    def latest(self, app_id: str) -> int | None:
        """Newest committed checkpoint id, or None."""
        ids = self.committed(app_id)
        return ids[-1] if ids else None

    def delete_checkpoint(self, app_id: str, ckpt_id: int) -> None:
        """Remove a checkpoint and uncommit it."""
        with self._lock:
            manifest = self._read_manifest(app_id)
            if ckpt_id in manifest["committed"]:
                manifest["committed"].remove(ckpt_id)
                self._write_manifest(app_id, manifest)
            shutil.rmtree(self._ckpt_dir(app_id, ckpt_id), ignore_errors=True)

    def wipe(self, app_id: str) -> None:
        """Destroy every checkpoint of an app (models NVM loss in tests)."""
        with self._lock:
            shutil.rmtree(self._app_dir(app_id), ignore_errors=True)

    def usage(self, app_id: str) -> int:
        """On-store bytes held by an app's committed checkpoints.

        Counts context-file payload+header bytes of committed checkpoints
        only (staged/uncommitted files are excluded), so capacity planning
        sees what retention actually retains.
        """
        with self._lock:
            total = 0
            for ckpt_id in self._read_manifest(app_id)["committed"]:
                cdir = self._ckpt_dir(app_id, ckpt_id)
                for path in cdir.glob("rank_*.ctx"):
                    try:
                        total += path.stat().st_size
                    except OSError:
                        continue
            return total

    # -- hooks ----------------------------------------------------------------

    def _write_file(self, path: Path, payload: bytes, header: ContextHeader) -> None:
        write_context_file(path, payload, header)

    def _on_chunk(self, nbytes: int) -> None:
        """Per-chunk write hook (bandwidth accounting/throttling lives here)."""

    def _post_commit(self, app_id: str) -> None:
        """Post-commit hook (retention policy lives here)."""


class LocalStore(DirectoryStore):
    """Node-local NVM: FIFO circular buffer with NDP drain locks.

    Keeps the newest ``capacity`` checkpoints; older ones are evicted at
    commit time unless locked by the drain daemon, matching the paper's
    circular-buffer-with-locks organization.
    """

    level = "local"

    def __init__(self, root: Path | str, capacity: int = 4):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        super().__init__(root)
        self.capacity = capacity

    def lock(self, app_id: str, ckpt_id: int) -> None:
        """Prevent eviction while the NDP drains this checkpoint."""
        with self._lock:
            manifest = self._read_manifest(app_id)
            if ckpt_id not in manifest["committed"]:
                raise FileNotFoundError(f"cannot lock uncommitted checkpoint {ckpt_id}")
            if ckpt_id not in manifest["locked"]:
                manifest["locked"].append(ckpt_id)
                self._write_manifest(app_id, manifest)

    def unlock(self, app_id: str, ckpt_id: int) -> None:
        """Release a drain lock (the checkpoint becomes evictable)."""
        with self._lock:
            manifest = self._read_manifest(app_id)
            if ckpt_id in manifest["locked"]:
                manifest["locked"].remove(ckpt_id)
                self._write_manifest(app_id, manifest)
            self._post_commit(app_id)

    def locked(self, app_id: str) -> list[int]:
        """Currently drain-locked checkpoint ids."""
        with self._lock:
            return list(self._read_manifest(app_id)["locked"])

    def _post_commit(self, app_id: str) -> None:
        manifest = self._read_manifest(app_id)
        committed = manifest["committed"]
        locked = set(manifest["locked"])
        # Evict oldest unlocked first, but never the newest checkpoint —
        # it is the recovery point.  Locked slots defer eviction to the
        # unlock that releases them (the buffer runs over capacity until
        # then, mirroring the NDP drain-lock semantics of Section 4.2.2).
        newest = committed[-1] if committed else None
        evictable = [c for c in committed if c not in locked and c != newest]
        excess = len(committed) - self.capacity
        for victim in evictable:
            if excess <= 0:
                break
            committed.remove(victim)
            excess -= 1
            self._write_manifest(app_id, manifest)
            shutil.rmtree(self._ckpt_dir(app_id, victim), ignore_errors=True)


class PartnerStore(DirectoryStore):
    """A partner node's local storage holding redundant copies."""

    level = "partner"

    def __init__(self, root: Path | str, capacity: int = 2):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        super().__init__(root)
        self.capacity = capacity

    def _post_commit(self, app_id: str) -> None:
        manifest = self._read_manifest(app_id)
        committed = manifest["committed"]
        while len(committed) > self.capacity:
            victim = committed.pop(0)
            self._write_manifest(app_id, manifest)
            shutil.rmtree(self._ckpt_dir(app_id, victim), ignore_errors=True)


class IOStore(DirectoryStore):
    """Global I/O (parallel file system), optionally bandwidth-throttled.

    ``throttle_bps`` caps the apparent write bandwidth by sleeping
    proportionally to bytes written — the examples use it to make the
    NDP-vs-host contrast observable at laptop scale.  ``None`` disables
    throttling (tests).
    """

    level = "io"

    def __init__(self, root: Path | str, throttle_bps: float | None = None):
        super().__init__(root)
        if throttle_bps is not None and throttle_bps <= 0:
            raise ValueError("throttle_bps must be positive or None")
        self.throttle_bps = throttle_bps
        self.bytes_written = 0

    def _write_file(self, path: Path, payload: bytes, header: ContextHeader) -> None:
        super()._write_file(path, payload, header)
        self._on_chunk(len(payload))

    def _on_chunk(self, nbytes: int) -> None:
        # Whole-file and per-frame writes share this accounting, so a
        # pipelined producer pays the throttle one chunk at a time (and
        # can compress the next block during the sleep) instead of in one
        # checkpoint-sized stall at the end.
        self.bytes_written += nbytes
        if self.throttle_bps is not None:
            time.sleep(nbytes / self.throttle_bps)
