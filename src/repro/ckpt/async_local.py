"""Asynchronous local checkpoint commits (double-buffered writes).

The paper removes the *I/O-level* write from the critical path; the
local-NVM write (``delta_L``, ~7.5 s at exascale) still blocks the
application because continued execution would mutate the memory being
written.  The standard mitigation is double buffering: the host memcpys
the state into a staging buffer (fast — memory bandwidth, not NVM
bandwidth) and a writer thread persists the staged copy while the
application computes.

:class:`AsyncLocalWriter` implements that for the runtime's local store:

* ``submit`` snapshots the payloads (bytes are immutable in Python, so
  "staging" is reference capture — the zero-copy best case) and returns
  once the previous commit finished, preserving ordering with one
  checkpoint in flight at most;
* the local commit happens on the writer thread;
* ``drain`` waits for everything in flight (restart paths call it —
  recovery must not race an in-flight commit).

A crash before the background commit lands simply means the previous
checkpoint is the newest recoverable one — the same guarantee a blocking
writer gives for a crash *during* the write.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from .backends import LocalStore
from .format import ContextHeader

__all__ = ["AsyncLocalWriter", "AsyncWriteStats"]


@dataclass
class AsyncWriteStats:
    """Counters for the background local writer."""

    submitted: int = 0
    committed: int = 0
    errors: list[str] = field(default_factory=list)


class AsyncLocalWriter:
    """Background committer for local checkpoints (one in flight).

    Parameters
    ----------
    app_id, local:
        Where commits go.
    pre_commit, post_commit:
        Optional callables run on the writer thread around each commit —
        the multilevel checkpointer uses them to pause/resume the NDP
        drain while the NVM write is in progress (Section 4.2.1's
        all-bandwidth-to-the-host rule applies to the background writer
        just as it does to a blocking one).
    on_commit:
        Optional callback invoked with the checkpoint id after each
        successful commit.
    """

    def __init__(
        self,
        app_id: str,
        local: LocalStore,
        pre_commit=None,
        post_commit=None,
        on_commit=None,
    ):
        self.app_id = app_id
        self.local = local
        self.pre_commit = pre_commit
        self.post_commit = post_commit
        self.on_commit = on_commit
        self.stats = AsyncWriteStats()
        self._pending: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    def submit(
        self, ckpt_id: int, files: dict[int, tuple[ContextHeader, bytes]]
    ) -> None:
        """Stage one checkpoint and return; the commit happens off-thread.

        Blocks only while a *previous* commit is still in flight (double
        buffering with depth 1 — deeper queues would let the application
        outrun the NVM indefinitely).
        """
        with self._lock:
            self._wait_pending()
            worker = threading.Thread(
                target=self._commit,
                args=(ckpt_id, files),
                name=f"async-local-{ckpt_id}",
                daemon=True,
            )
            self.stats.submitted += 1
            self._pending = worker
            worker.start()

    def drain(self, timeout: float = 60.0) -> bool:
        """Wait for any in-flight commit; False on timeout."""
        with self._lock:
            return self._wait_pending(timeout)

    def _wait_pending(self, timeout: float = 60.0) -> bool:
        if self._pending is not None:
            self._pending.join(timeout)
            alive = self._pending.is_alive()
            if alive:
                return False
            self._pending = None
        return True

    def _commit(
        self, ckpt_id: int, files: dict[int, tuple[ContextHeader, bytes]]
    ) -> None:
        if self.pre_commit is not None:
            self.pre_commit()
        try:
            self.local.write_checkpoint(self.app_id, ckpt_id, files)
        except Exception as exc:  # noqa: BLE001 - surfaced via stats
            self.stats.errors.append(f"ckpt {ckpt_id}: {exc}")
            return
        finally:
            if self.post_commit is not None:
                self.post_commit()
        self.stats.committed += 1
        if self.on_commit is not None:
            self.on_commit(ckpt_id)
