"""The NDP drain daemon: background checkpoint-to-I/O offload.

This thread plays the role of the NDP processor in Figure 2: it watches
the node-local store for newly committed checkpoints, locks the newest
undrained one, compresses it block-by-block, and ships it to the global
I/O store — all without involving the "host" (the caller's thread).
Faithful to Section 4.2:

* always drains the *newest* eligible checkpoint (older undrained ones are
  skipped — draining them would only lengthen I/O-recovery rerun),
* locks the checkpoint in the local circular buffer for the duration and
  unlocks (making it evictable) on completion,
* compression overlaps the I/O write block-by-block: the daemon thread
  feeds compressed frames through a bounded queue to a single writer
  thread streaming them into the (possibly throttled) I/O store, so at
  most ``queue_depth`` blocks are in flight and a rank's compressed
  payload is never materialized whole (Section 4.2.2's small-DMA
  pipeline).  ``pipelined=False`` falls back to rank-at-a-time staging
  (compress a full rank, then write it while the next compresses) — the
  pre-pipeline behaviour, kept as the benchmark baseline,
* :meth:`pause` / :meth:`resume` let the host claim full NVM bandwidth
  during its local checkpoint writes, and recovery code pauses the drain
  while it reads from global I/O (Section 4.2.3).

Per-stage byte/second counters (:class:`repro.ckpt.metrics.StageCounter`)
on :class:`DrainStats` expose the achieved compress and write rates, the
two terms of the paper's drain-rate bound
``min(io_bw / (1 - factor), compress_rate)``.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..compression.codecs import Codec
from ..compression.delta import xor_delta, zero_rle
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .backends import IOStore, LocalStore
from .format import CorruptCheckpointError, make_header
from .metrics import StageCounter
from .stream import DEFAULT_BLOCK_SIZE, compress_stream, iter_frames

__all__ = ["NDPDrainDaemon", "DrainStats"]

# Registry instruments shared by every daemon instance, labelled by app.
_DRAINS = obs_metrics.REGISTRY.counter(
    "ndp_drains_total", "checkpoints drained to the I/O level"
)
_STALLS = obs_metrics.REGISTRY.counter(
    "ndp_backpressure_stalls_total",
    "frames that blocked because the writer queue was full",
)
_STALL_SECONDS = obs_metrics.REGISTRY.counter(
    "ndp_backpressure_stall_seconds_total",
    "seconds the compressor spent blocked on writer backpressure",
)
_QUEUE_DEPTH = obs_metrics.REGISTRY.gauge(
    "ndp_queue_depth", "compressed frames currently queued for the writer"
)


@dataclass
class DrainStats:
    """Counters exposed by the daemon for tests and examples."""

    checkpoints_drained: int = 0
    checkpoints_skipped: int = 0
    delta_drains: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: Backpressure accounting: how many frames blocked on a full writer
    #: queue, and the total seconds the compressor spent blocked.  A
    #: nonzero value means the drain is I/O-bound — the paper's regime
    #: where only overlap (not kernel speed) helps.
    stalls: int = 0
    stall_seconds: float = 0.0
    drained_ids: list[int] = field(default_factory=list)
    #: Time/bytes spent producing compressed frames (daemon thread).
    compress: StageCounter = field(default_factory=StageCounter)
    #: Time/bytes spent writing frames to the I/O store (writer thread).
    write: StageCounter = field(default_factory=StageCounter)
    #: Whole-checkpoint drain wall time, charged with *uncompressed*
    #: bytes — ``drain.bytes / drain.seconds`` is the measured end-to-end
    #: drain rate, directly comparable to the model's
    #: ``min(io_bw / (1 - factor), compress_rate)`` bound.
    drain: StageCounter = field(default_factory=StageCounter)

    @property
    def achieved_factor(self) -> float:
        """Aggregate compression factor over everything drained."""
        if self.bytes_in == 0:
            return 0.0
        return 1.0 - self.bytes_out / self.bytes_in

    def as_dict(self) -> dict[str, object]:
        """Plain-dict export consumed by the ``repro.obs`` registry."""
        return {
            "checkpoints_drained": self.checkpoints_drained,
            "checkpoints_skipped": self.checkpoints_skipped,
            "delta_drains": self.delta_drains,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "stalls": self.stalls,
            "stall_seconds": self.stall_seconds,
            "achieved_factor": self.achieved_factor,
            "compress": self.compress.as_dict(),
            "write": self.write.as_dict(),
            "drain": self.drain.as_dict(),
        }


class NDPDrainDaemon:
    """Background drainer from a :class:`LocalStore` to an :class:`IOStore`.

    Parameters
    ----------
    app_id:
        Application whose checkpoints are drained.
    local, io:
        Source and destination stores.
    codec:
        Optional compression codec; ``None`` drains uncompressed.
    block_size:
        Compression block size (Section 4.2.2's small-DMA blocks).
    poll_interval:
        Idle poll period, seconds.
    delta_every:
        The paper's future-work optimization: 0 disables (every drain is a
        full checkpoint); ``k > 0`` stores ``k-1`` drains out of every
        ``k`` as zero-RLE'd XOR *deltas* against the most recent full
        drain, shrinking I/O traffic for slowly-evolving state.  Recovery
        reconstructs delta checkpoints from their base
        (:mod:`repro.ckpt.restart`).
    pipelined:
        True (default) streams compressed frames to the writer thread
        through a bounded queue — compression of block ``b+1`` overlaps
        the write (and throttle sleep) of block ``b``, and peak buffering
        is ``queue_depth`` blocks.  False restores rank-at-a-time staging.
    queue_depth:
        Frames in flight between the compressor and the writer
        (pipelined mode's backpressure bound).
    compress_workers:
        Threads compressing blocks concurrently inside one rank (passed
        to :func:`repro.ckpt.stream.iter_frames`).  Useful for codecs
        that release the GIL; 1 keeps compression on the daemon thread.
    """

    def __init__(
        self,
        app_id: str,
        local: LocalStore,
        io: IOStore,
        codec: Codec | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        poll_interval: float = 0.005,
        delta_every: int = 0,
        pipelined: bool = True,
        queue_depth: int = 8,
        compress_workers: int = 1,
    ):
        if delta_every < 0:
            raise ValueError("delta_every must be >= 0")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if compress_workers < 1:
            raise ValueError("compress_workers must be >= 1")
        self.app_id = app_id
        self.local = local
        self.io = io
        self.codec = codec
        self.block_size = block_size
        self.poll_interval = poll_interval
        self.delta_every = delta_every
        self.pipelined = pipelined
        self.queue_depth = queue_depth
        self.compress_workers = compress_workers
        self.stats = DrainStats()
        obs_metrics.register_drain_stats(self.stats, app=app_id)
        # Delta state: the most recent *full* drained checkpoint.
        self._base_id: int | None = None
        self._base_payloads: dict[int, bytes] = {}
        self._since_full = 0

        self._stop = threading.Event()
        self._running = threading.Event()  # set => not paused
        self._running.set()
        self._idle = threading.Event()
        self._idle.set()
        self._high_water = -1
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "NDPDrainDaemon":
        """Start the drain thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(target=self._loop, name="ndp-drain", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the daemon, waiting for the current drain to finish."""
        self._stop.set()
        self._running.set()  # unblock a paused loop so it can exit
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError("NDP drain daemon failed to stop in time")
            self._thread = None

    def __enter__(self) -> "NDPDrainDaemon":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- host-facing controls ----------------------------------------------------

    def pause(self) -> None:
        """Suspend draining (host NVM write or I/O recovery in progress)."""
        self._running.clear()

    def resume(self) -> None:
        """Resume draining after :meth:`pause`."""
        self._running.set()

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Block until no drain is in progress and nothing is eligible.

        Returns False on timeout.  Useful in tests and at application
        shutdown ("flush the last checkpoint to I/O").
        """
        deadline = threading.Event()
        end = _monotonic() + timeout
        while _monotonic() < end:
            if self._idle.is_set() and self._candidate() is None:
                return True
            deadline.wait(self.poll_interval)
        return False

    # -- internals ---------------------------------------------------------------

    def _candidate(self) -> int | None:
        """Newest local checkpoint not yet drained/skipped or on I/O."""
        latest = self.local.latest(self.app_id)
        if latest is None or latest <= self._high_water:
            return None
        on_io = set(self.io.committed(self.app_id))
        if latest in on_io:
            return None
        return latest

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._running.wait()
            if self._stop.is_set():
                return
            ckpt_id = self._candidate()
            if ckpt_id is None:
                self._stop.wait(self.poll_interval)
                continue
            self._idle.clear()
            try:
                self._drain_one(ckpt_id)
            finally:
                self._idle.set()

    def _drain_one(self, ckpt_id: int) -> None:
        """Lock, compress (overlapped with writing), commit, unlock."""
        try:
            self.local.lock(self.app_id, ckpt_id)
        except FileNotFoundError:
            # Evicted between candidate selection and lock: skip it.
            self._note_skip(ckpt_id)
            return
        try:
            files = self.local.read_checkpoint(self.app_id, ckpt_id)
        except (FileNotFoundError, CorruptCheckpointError, OSError):
            # Evicted, corrupted on NVM, or unreadable: draining it would
            # propagate bad data to the I/O level — skip it and move on.
            self.local.unlock(self.app_id, ckpt_id)
            self._note_skip(ckpt_id)
            return
        use_delta = self._delta_eligible(files)
        payload_bytes = sum(len(p) for _, p in files.values())
        try:
            with obs_trace.span(
                "drain",
                "drain-ckpt",
                label=f"ckpt-{ckpt_id}",
                ckpt=ckpt_id,
                ranks=len(files),
                bytes=payload_bytes,
                delta=use_delta,
            ), self.stats.drain.timed(payload_bytes):
                if self.pipelined:
                    self._push_pipelined(ckpt_id, files, use_delta)
                else:
                    self._push_staged(ckpt_id, files, use_delta)
                self.io.commit_checkpoint(self.app_id, ckpt_id)
            self.stats.checkpoints_drained += 1
            self.stats.drained_ids.append(ckpt_id)
            _DRAINS.inc(app=self.app_id)
            self._high_water = max(self._high_water, ckpt_id)
            if use_delta:
                self.stats.delta_drains += 1
                self._since_full += 1
            elif self.delta_every > 0:
                self._base_id = ckpt_id
                self._base_payloads = {r: p for r, (_, p) in files.items()}
                self._since_full = 0
        finally:
            self.local.unlock(self.app_id, ckpt_id)

    def _rank_body(self, rank: int, payload: bytes, use_delta: bool):
        """The bytes actually drained for one rank: payload or its delta."""
        if use_delta:
            return zero_rle(xor_delta(self._base_payloads[rank], payload, strict=True))
        return payload

    def _push_pipelined(self, ckpt_id: int, files: dict, use_delta: bool) -> None:
        """Frame-at-a-time drain: bounded queue into a single writer thread.

        The daemon thread compresses blocks and feeds wire frames into a
        ``queue_depth``-bounded queue; the writer thread streams the
        queue into the store via :meth:`DirectoryStore.stage_rank_frames`.
        The queue bound is the backpressure: when the (throttled) store
        falls behind, ``put`` blocks and compression stalls rather than
        buffering the checkpoint.  The compressor may run one rank ahead
        of the writer, still bounded by that rank's queue.
        """
        delta_base = self._base_id if use_delta else None
        codec_name = self.codec.name if self.codec is not None else None
        with ThreadPoolExecutor(max_workers=1, thread_name_prefix="ndp-write") as writer:
            pending: Future | None = None
            for rank, (header, payload) in sorted(files.items()):
                self._running.wait()
                body = self._rank_body(rank, payload, use_delta)
                if self.codec is not None:
                    frames = iter_frames(
                        body, self.codec, self.block_size, self.compress_workers
                    )
                else:
                    mv = memoryview(body)
                    frames = (
                        mv[off : off + self.block_size]
                        for off in range(0, max(len(mv), 1), self.block_size)
                    )
                fifo: queue.Queue = queue.Queue(maxsize=self.queue_depth)
                fut = writer.submit(
                    self._write_rank,
                    ckpt_id,
                    rank,
                    fifo,
                    header.position,
                    header.uncompressed_size,
                    codec_name,
                    delta_base,
                )
                out_bytes = 0
                t0 = time.perf_counter()
                for frame in frames:
                    self.stats.compress.add(len(frame), time.perf_counter() - t0)
                    out_bytes += len(frame)
                    self._feed(fifo, fut, bytes(frame))
                    t0 = time.perf_counter()
                fifo.put(None)
                if pending is not None:
                    pending.result()
                pending = fut
                self.stats.bytes_in += len(payload)
                self.stats.bytes_out += out_bytes
            if pending is not None:
                pending.result()

    def _feed(self, fifo: queue.Queue, fut: Future, frame: bytes) -> None:
        """Put a frame with backpressure, bailing out if the writer died.

        A full queue means the (throttled) store has fallen behind: the
        stall is counted and its duration charged to
        ``stats.stall_seconds`` — the live signal that the drain is
        I/O-bound rather than compute-bound.
        """
        t0 = time.perf_counter()
        stalled = False
        while True:
            try:
                fifo.put(frame, timeout=0.1)
                break
            except queue.Full:
                if not stalled:
                    stalled = True
                    self.stats.stalls += 1
                    _STALLS.inc(app=self.app_id)
                if fut.done():
                    fut.result()  # surfaces the writer's exception
                    raise RuntimeError("writer finished while frames remained")
        if stalled:
            dt = time.perf_counter() - t0
            self.stats.stall_seconds += dt
            _STALL_SECONDS.inc(dt, app=self.app_id)
        _QUEUE_DEPTH.set(fifo.qsize(), app=self.app_id)

    def _write_rank(
        self,
        ckpt_id: int,
        rank: int,
        fifo: queue.Queue,
        position: float,
        uncompressed_size: int,
        codec_name: str | None,
        delta_base: int | None,
    ):
        """Writer-thread body: drain the frame queue into the I/O store."""
        t0 = time.perf_counter()
        out_header = self.io.stage_rank_frames(
            self.app_id,
            ckpt_id,
            rank,
            iter(fifo.get, None),
            position=position,
            uncompressed_size=uncompressed_size,
            codec=codec_name,
            delta_base=delta_base,
        )
        self.stats.write.add(out_header.payload_size, time.perf_counter() - t0)
        return out_header

    def _push_staged(self, ckpt_id: int, files: dict, use_delta: bool) -> None:
        """Rank-at-a-time drain (the pre-pipeline baseline).

        Each rank is compressed to one bytes object in the daemon thread,
        then written whole by the writer thread while the next rank
        compresses — overlap at rank granularity, with a full compressed
        rank buffered and the throttle paid in one sleep per rank.
        """
        delta_base = self._base_id if use_delta else None
        with ThreadPoolExecutor(max_workers=1, thread_name_prefix="ndp-write") as writer:
            pending: Future | None = None
            for rank, (header, payload) in sorted(files.items()):
                self._running.wait()
                body = self._rank_body(rank, payload, use_delta)
                t0 = time.perf_counter()
                if self.codec is not None:
                    out_payload = compress_stream(body, self.codec, self.block_size)
                    codec_name = self.codec.name
                else:
                    out_payload = body
                    codec_name = None
                self.stats.compress.add(len(out_payload), time.perf_counter() - t0)
                out_header = make_header(
                    app_id=header.app_id,
                    rank=header.rank,
                    ckpt_id=header.ckpt_id,
                    payload=out_payload,
                    position=header.position,
                    uncompressed_size=header.uncompressed_size,
                    codec=codec_name,
                    delta_base=delta_base,
                )
                self.stats.bytes_in += len(payload)
                self.stats.bytes_out += len(out_payload)
                if pending is not None:
                    pending.result()
                pending = writer.submit(
                    self._stage_whole_rank, ckpt_id, rank, out_header, out_payload
                )
            if pending is not None:
                pending.result()

    def _stage_whole_rank(self, ckpt_id: int, rank: int, header, payload) -> None:
        t0 = time.perf_counter()
        self.io.stage_rank_file(self.app_id, ckpt_id, rank, header, payload)
        self.stats.write.add(len(payload), time.perf_counter() - t0)

    def _delta_eligible(self, files: dict) -> bool:
        """Whether this drain may be stored as a delta against the base."""
        if self.delta_every <= 0 or self._base_id is None:
            return False
        if self._since_full >= self.delta_every - 1:
            return False  # due for a full checkpoint
        # Every rank needs a base of matching size — a resized rank state
        # forces a full drain (strict xor_delta would reject it anyway).
        if set(files) != set(self._base_payloads):
            return False
        return all(
            len(payload) == len(self._base_payloads[rank])
            for rank, (_, payload) in files.items()
        )

    def _note_skip(self, ckpt_id: int) -> None:
        self.stats.checkpoints_skipped += 1
        self._high_water = max(self._high_water, ckpt_id)


def _monotonic() -> float:
    return time.monotonic()
