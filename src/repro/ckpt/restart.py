"""Recovery protocol: local -> partner -> global I/O (Section 4.2.3).

Given the prioritized list of stores, :func:`recover` determines the
rollback point (the newest checkpoint committed *anywhere*), then fetches
it from the fastest level that holds it, verifying integrity and
decompressing drained checkpoints with parallel host-side block decoding
(Section 4.3).  Rank files are read one at a time
(:meth:`DirectoryStore.iter_rank_files`), so restore memory is bounded by
one rank's state, not the whole checkpoint.  Delta-drained checkpoints
(the NDP daemon's ``delta_every`` mode) are reconstructed rank-by-rank
from their full base checkpoint on the same store.  If the designated
checkpoint is unreadable (corrupt file, CRC mismatch, missing delta base)
recovery walks back to the next-newest id rather than failing — a failed
restore must never strand the application.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compression.codecs import codec_from_name
from ..compression.delta import apply_xor_delta, zero_rle_decode
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .backends import DirectoryStore
from .format import ContextHeader, CorruptCheckpointError
from .stream import parallel_decompress

_RECOVERIES = obs_metrics.REGISTRY.counter(
    "restore_recoveries_total", "successful recover() calls, by serving level"
)
_WALKBACKS = obs_metrics.REGISTRY.counter(
    "restore_walkbacks_total", "designated checkpoints rejected during recovery"
)

__all__ = ["RecoveryResult", "recover", "NoCheckpointError"]


class NoCheckpointError(RuntimeError):
    """No usable checkpoint exists on any storage level."""


@dataclass(frozen=True)
class RecoveryResult:
    """A successful recovery.

    Attributes
    ----------
    ckpt_id:
        The checkpoint recovered.
    level:
        Storage level that served it (``"local"``, ``"partner"``, ``"io"``).
    payloads:
        Per-rank application state, decompressed (and delta-reconstructed).
    positions:
        Per-rank progress markers from the context headers.
    """

    ckpt_id: int
    level: str
    payloads: dict[int, bytes]
    positions: dict[int, float]


def recover(
    app_id: str,
    stores: list[DirectoryStore],
    decompress_workers: int = 4,
    verify: bool = True,
) -> RecoveryResult:
    """Restore the newest usable checkpoint, preferring earlier stores.

    ``stores`` is ordered fastest-first (local, partner, I/O).  The
    rollback point is the newest id committed on any store; each store
    holding that id is tried in priority order; on corruption the next
    older id is designated, until no candidates remain.
    """
    if not stores:
        raise ValueError("need at least one store")
    candidates: set[int] = set()
    for store in stores:
        candidates.update(store.committed(app_id))
    if not candidates:
        raise NoCheckpointError(f"no committed checkpoints for {app_id!r} on any level")

    with obs_trace.span("restore", "recover", app=app_id) as sp:
        for ckpt_id in sorted(candidates, reverse=True):
            for store in stores:
                if ckpt_id not in store.committed(app_id):
                    continue
                try:
                    files = store.iter_rank_files(app_id, ckpt_id, verify=verify)
                    payloads, positions = _unpack(
                        files, decompress_workers, store, app_id, verify
                    )
                except (CorruptCheckpointError, FileNotFoundError, OSError, ValueError, KeyError):
                    _WALKBACKS.inc(app=app_id)
                    continue
                sp.set(
                    ckpt=ckpt_id,
                    level=store.level,
                    ranks=len(payloads),
                    bytes=sum(len(p) for p in payloads.values()),
                )
                _RECOVERIES.inc(app=app_id, level=store.level)
                return RecoveryResult(
                    ckpt_id=ckpt_id,
                    level=store.level,
                    payloads=payloads,
                    positions=positions,
                )
        sp.set(failed=True)
    raise NoCheckpointError(
        f"all committed checkpoints of {app_id!r} failed verification"
    )


def _decode(header: ContextHeader, payload: bytes, workers: int) -> bytes:
    """Undo the codec layer of one rank file (not the delta layer)."""
    if header.codec is None:
        return payload
    codec = codec_from_name(header.codec)
    return parallel_decompress(payload, codec, workers=workers)


def _unpack(
    files,
    workers: int,
    store: DirectoryStore,
    app_id: str,
    verify: bool,
) -> tuple[dict[int, bytes], dict[int, float]]:
    """Decompress and delta-reconstruct payloads/positions per rank.

    ``files`` yields ``(header, payload)`` pairs lazily (one rank file
    resident at a time); a delta rank pulls only its *own* rank's base
    file, so peak memory during reconstruction is one rank's compressed
    payload, its base, and the decoded state — never a whole checkpoint
    of extra copies.
    """
    payloads: dict[int, bytes] = {}
    positions: dict[int, float] = {}
    for header, payload in files:
        rank = header.rank
        body = _decode(header, payload, workers)
        if header.delta_base is not None:
            base_header, base_payload = store.read_rank_file(
                app_id, header.delta_base, rank, verify=verify
            )
            if base_header.delta_base is not None:
                raise ValueError(
                    f"delta base {header.delta_base} is itself a delta "
                    "(chained deltas are not produced by the daemon)"
                )
            base = _decode(base_header, base_payload, workers)
            body = apply_xor_delta(base, zero_rle_decode(body))
        if len(body) != header.uncompressed_size:
            raise ValueError(
                f"rank {rank}: reconstructed {len(body)} bytes, "
                f"expected {header.uncompressed_size}"
            )
        payloads[rank] = body
        positions[rank] = header.position
    return payloads, positions
