"""Checkpoint context-file format (the BLCR stand-in).

BLCR writes one *process context file* per MPI rank plus metadata
identifying the application, the rank, and a unique checkpoint id
(Section 4.2.1).  This module defines the equivalent on-disk format:

``[magic][version][header-length][header JSON][payload]``

The JSON header carries the metadata and integrity information (CRC32 of
the payload, sizes, codec name if the payload is compressed).  Payload
bytes are the application state (for the proxy apps, a serialized state
dict).  Headers are JSON so context files remain debuggable with a hex
editor and ``jq``.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "ContextHeader",
    "write_context_file",
    "read_context_file",
    "make_header",
    "CorruptCheckpointError",
]

_MAGIC = b"RPCR"
_VERSION = 1


class CorruptCheckpointError(ValueError):
    """A context file failed integrity verification."""


@dataclass(frozen=True)
class ContextHeader:
    """Metadata stored with every context file.

    Attributes
    ----------
    app_id:
        Application identity (BLCR's parent-process analog).
    rank:
        MPI rank this context file belongs to.
    ckpt_id:
        Monotone checkpoint number, unique per application.
    position:
        Application-defined progress marker (e.g. step count).
    payload_crc:
        CRC32 of the stored payload bytes.
    payload_size:
        Stored payload size in bytes.
    uncompressed_size:
        Original state size (== ``payload_size`` when ``codec`` is None).
    codec:
        Name of the codec applied to the payload, or None.
    delta_base:
        When set, the payload is a delta (zero-RLE'd XOR) against the
        *full* checkpoint with this id; reconstruction needs that base.
        None for full checkpoints.
    """

    app_id: str
    rank: int
    ckpt_id: int
    position: float
    payload_crc: int
    payload_size: int
    uncompressed_size: int
    codec: str | None = None
    delta_base: int | None = None


def write_context_file(path: Path | str, payload: bytes, header: ContextHeader) -> int:
    """Atomically write a context file; returns bytes written.

    Write-to-temp-then-rename so a crash mid-write never leaves a file
    that parses (incomplete checkpoints must look absent, Section 4.2.1's
    'pause until consistent' requirement).
    """
    path = Path(path)
    if header.payload_size != len(payload):
        raise ValueError(
            f"header payload_size {header.payload_size} != payload length {len(payload)}"
        )
    head = json.dumps(asdict(header), separators=(",", ":")).encode("utf-8")
    blob = _MAGIC + struct.pack("<HI", _VERSION, len(head)) + head + payload
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(blob)
    tmp.replace(path)
    return len(blob)


def read_context_file(path: Path | str, verify: bool = True) -> tuple[ContextHeader, bytes]:
    """Read and (by default) integrity-check a context file.

    Raises :class:`CorruptCheckpointError` on bad magic, truncation, or a
    CRC mismatch.
    """
    blob = Path(path).read_bytes()
    if len(blob) < 10 or blob[:4] != _MAGIC:
        raise CorruptCheckpointError(f"{path}: not a checkpoint context file")
    version, head_len = struct.unpack_from("<HI", blob, 4)
    if version != _VERSION:
        raise CorruptCheckpointError(f"{path}: unsupported version {version}")
    head_end = 10 + head_len
    if len(blob) < head_end:
        raise CorruptCheckpointError(f"{path}: truncated header")
    try:
        header = ContextHeader(**json.loads(blob[10:head_end]))
    except (json.JSONDecodeError, TypeError) as exc:
        raise CorruptCheckpointError(f"{path}: malformed header: {exc}") from exc
    payload = blob[head_end:]
    if len(payload) != header.payload_size:
        raise CorruptCheckpointError(
            f"{path}: payload truncated ({len(payload)} of {header.payload_size} bytes)"
        )
    if verify and (zlib.crc32(payload) & 0xFFFFFFFF) != header.payload_crc:
        raise CorruptCheckpointError(f"{path}: payload CRC mismatch")
    return header, payload


def make_header(
    app_id: str,
    rank: int,
    ckpt_id: int,
    payload: bytes,
    position: float = 0.0,
    uncompressed_size: int | None = None,
    codec: str | None = None,
    delta_base: int | None = None,
) -> ContextHeader:
    """Convenience constructor computing the CRC and sizes."""
    return ContextHeader(
        app_id=app_id,
        rank=rank,
        ckpt_id=ckpt_id,
        position=position,
        payload_crc=zlib.crc32(payload) & 0xFFFFFFFF,
        payload_size=len(payload),
        uncompressed_size=len(payload) if uncompressed_size is None else uncompressed_size,
        codec=codec,
        delta_base=delta_base,
    )
