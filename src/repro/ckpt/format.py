"""Checkpoint context-file format (the BLCR stand-in).

BLCR writes one *process context file* per MPI rank plus metadata
identifying the application, the rank, and a unique checkpoint id
(Section 4.2.1).  This module defines the equivalent on-disk format:

``[magic][version][header-length][header JSON][payload]``

The JSON header carries the metadata and integrity information (CRC32 of
the payload, sizes, codec name if the payload is compressed).  Payload
bytes are the application state (for the proxy apps, a serialized state
dict).  Headers are JSON so context files remain debuggable with a hex
editor and ``jq``.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "ContextHeader",
    "write_context_file",
    "write_context_frames",
    "read_context_file",
    "read_context_header",
    "read_context_chunks",
    "make_header",
    "CorruptCheckpointError",
]

_MAGIC = b"RPCR"
_VERSION = 1


class CorruptCheckpointError(ValueError):
    """A context file failed integrity verification."""


@dataclass(frozen=True)
class ContextHeader:
    """Metadata stored with every context file.

    Attributes
    ----------
    app_id:
        Application identity (BLCR's parent-process analog).
    rank:
        MPI rank this context file belongs to.
    ckpt_id:
        Monotone checkpoint number, unique per application.
    position:
        Application-defined progress marker (e.g. step count).
    payload_crc:
        CRC32 of the stored payload bytes.
    payload_size:
        Stored payload size in bytes.
    uncompressed_size:
        Original state size (== ``payload_size`` when ``codec`` is None).
    codec:
        Name of the codec applied to the payload, or None.
    delta_base:
        When set, the payload is a delta (zero-RLE'd XOR) against the
        *full* checkpoint with this id; reconstruction needs that base.
        None for full checkpoints.
    """

    app_id: str
    rank: int
    ckpt_id: int
    position: float
    payload_crc: int
    payload_size: int
    uncompressed_size: int
    codec: str | None = None
    delta_base: int | None = None


def write_context_file(path: Path | str, payload: bytes, header: ContextHeader) -> int:
    """Atomically write a context file; returns bytes written.

    Write-to-temp-then-rename so a crash mid-write never leaves a file
    that parses (incomplete checkpoints must look absent, Section 4.2.1's
    'pause until consistent' requirement).
    """
    path = Path(path)
    if header.payload_size != len(payload):
        raise ValueError(
            f"header payload_size {header.payload_size} != payload length {len(payload)}"
        )
    head = json.dumps(asdict(header), separators=(",", ":")).encode("utf-8")
    blob = _MAGIC + struct.pack("<HI", _VERSION, len(head)) + head + payload
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(blob)
    tmp.replace(path)
    return len(blob)


def write_context_frames(
    path: Path | str,
    frames,
    *,
    app_id: str,
    rank: int,
    ckpt_id: int,
    position: float = 0.0,
    uncompressed_size: int | None = None,
    codec: str | None = None,
    delta_base: int | None = None,
    on_chunk=None,
) -> ContextHeader:
    """Stream ``frames`` (an iterable of byte chunks) into a context file.

    The streaming counterpart of :func:`write_context_file`: the payload
    never exists as one object — each frame is written (and CRC'd) as it
    arrives, so a drain pipeline can feed compressed blocks straight from
    the codec to disk with only one block in memory.  ``on_chunk(nbytes)``
    is invoked after each frame hits the file — backends hook this for
    per-chunk bandwidth throttling.

    The header is written into a space reserved up front and patched once
    sizes and CRC are known (JSON tolerates the padding), keeping the
    write single-pass; the temp-then-rename dance still makes the commit
    atomic.  Returns the final :class:`ContextHeader`.
    """
    path = Path(path)
    meta = dict(
        app_id=app_id,
        rank=rank,
        ckpt_id=ckpt_id,
        position=position,
        codec=codec,
        delta_base=delta_base,
    )
    placeholder = ContextHeader(
        payload_crc=0, payload_size=0, uncompressed_size=0, **meta
    )
    reserve = len(json.dumps(asdict(placeholder), separators=(",", ":")).encode("utf-8")) + 48
    tmp = path.with_suffix(path.suffix + ".tmp")
    crc = 0
    size = 0
    try:
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC + struct.pack("<HI", _VERSION, reserve))
            fh.write(b" " * reserve)
            for frame in frames:
                fh.write(frame)
                crc = zlib.crc32(frame, crc)
                size += len(frame)
                if on_chunk is not None:
                    on_chunk(len(frame))
            header = ContextHeader(
                payload_crc=crc & 0xFFFFFFFF,
                payload_size=size,
                uncompressed_size=size if uncompressed_size is None else uncompressed_size,
                **meta,
            )
            head = json.dumps(asdict(header), separators=(",", ":")).encode("utf-8")
            fh.seek(10)
            fh.write(head + b" " * (reserve - len(head)))
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    tmp.replace(path)
    return header


def read_context_header(path: Path | str) -> tuple[ContextHeader, int]:
    """Read only the header of a context file; returns (header, payload offset).

    Lets stores inspect rank files (sizes, codec, delta base) without
    pulling payloads into memory.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        pre = fh.read(10)
        if len(pre) < 10 or pre[:4] != _MAGIC:
            raise CorruptCheckpointError(f"{path}: not a checkpoint context file")
        version, head_len = struct.unpack_from("<HI", pre, 4)
        if version != _VERSION:
            raise CorruptCheckpointError(f"{path}: unsupported version {version}")
        head = fh.read(head_len)
        if len(head) < head_len:
            raise CorruptCheckpointError(f"{path}: truncated header")
    try:
        header = ContextHeader(**json.loads(head))
    except (json.JSONDecodeError, TypeError) as exc:
        raise CorruptCheckpointError(f"{path}: malformed header: {exc}") from exc
    return header, 10 + head_len


def read_context_chunks(
    path: Path | str, verify: bool = True, chunk_size: int = 1 << 20
):
    """Chunked counterpart of :func:`read_context_file`.

    Returns ``(header, chunks)`` where ``chunks`` yields the payload in
    ``chunk_size`` pieces, CRC-checked incrementally; a mismatch or a
    truncated payload raises :class:`CorruptCheckpointError` from the
    generator.  Restore uses this so only one chunk of one rank file is
    buffered at a time.
    """
    path = Path(path)
    header, offset = read_context_header(path)

    def _chunks():
        crc = 0
        got = 0
        with open(path, "rb") as fh:
            fh.seek(offset)
            while True:
                chunk = fh.read(chunk_size)
                if not chunk:
                    break
                crc = zlib.crc32(chunk, crc)
                got += len(chunk)
                yield chunk
        if got != header.payload_size:
            raise CorruptCheckpointError(
                f"{path}: payload truncated ({got} of {header.payload_size} bytes)"
            )
        if verify and (crc & 0xFFFFFFFF) != header.payload_crc:
            raise CorruptCheckpointError(f"{path}: payload CRC mismatch")

    return header, _chunks()


def read_context_file(path: Path | str, verify: bool = True) -> tuple[ContextHeader, bytes]:
    """Read and (by default) integrity-check a context file.

    Raises :class:`CorruptCheckpointError` on bad magic, truncation, or a
    CRC mismatch.
    """
    blob = Path(path).read_bytes()
    if len(blob) < 10 or blob[:4] != _MAGIC:
        raise CorruptCheckpointError(f"{path}: not a checkpoint context file")
    version, head_len = struct.unpack_from("<HI", blob, 4)
    if version != _VERSION:
        raise CorruptCheckpointError(f"{path}: unsupported version {version}")
    head_end = 10 + head_len
    if len(blob) < head_end:
        raise CorruptCheckpointError(f"{path}: truncated header")
    try:
        header = ContextHeader(**json.loads(blob[10:head_end]))
    except (json.JSONDecodeError, TypeError) as exc:
        raise CorruptCheckpointError(f"{path}: malformed header: {exc}") from exc
    payload = blob[head_end:]
    if len(payload) != header.payload_size:
        raise CorruptCheckpointError(
            f"{path}: payload truncated ({len(payload)} of {header.payload_size} bytes)"
        )
    if verify and (zlib.crc32(payload) & 0xFFFFFFFF) != header.payload_crc:
        raise CorruptCheckpointError(f"{path}: payload CRC mismatch")
    return header, payload


def make_header(
    app_id: str,
    rank: int,
    ckpt_id: int,
    payload: bytes,
    position: float = 0.0,
    uncompressed_size: int | None = None,
    codec: str | None = None,
    delta_base: int | None = None,
) -> ContextHeader:
    """Convenience constructor computing the CRC and sizes."""
    return ContextHeader(
        app_id=app_id,
        rank=rank,
        ckpt_id=ckpt_id,
        position=position,
        payload_crc=zlib.crc32(payload) & 0xFFFFFFFF,
        payload_size=len(payload),
        uncompressed_size=len(payload) if uncompressed_size is None else uncompressed_size,
        codec=codec,
        delta_base=delta_base,
    )
