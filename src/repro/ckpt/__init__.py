"""Functional multilevel checkpoint/restart runtime.

A working (filesystem-backed) implementation of the paper's Section 4
design: BLCR-style context files, a local-NVM circular buffer with drain
locks, partner and global-I/O stores, a background NDP drain daemon that
compresses and ships checkpoints off the critical path, and the
local -> partner -> I/O recovery protocol with parallel host-side
decompression.
"""

from .backends import DirectoryStore, IOStore, LocalStore, PartnerStore
from .format import (
    ContextHeader,
    CorruptCheckpointError,
    make_header,
    read_context_file,
    write_context_file,
)
from .async_local import AsyncLocalWriter, AsyncWriteStats
from .metrics import RuntimeMetrics
from .multilevel import MultilevelCheckpointer
from .ndp_daemon import DrainStats, NDPDrainDaemon
from .restart import NoCheckpointError, RecoveryResult, recover
from .schedule import AdaptiveScheduler, DalyIntervalAdvisor, OnlineMTTIEstimator
from .tools import CheckpointInfo, VerifyReport, deep_verify, inventory, verify_store
from .stream import (
    DEFAULT_BLOCK_SIZE,
    compress_stream,
    decompress_stream,
    iter_compressed_blocks,
    parallel_decompress,
)

__all__ = [
    "ContextHeader",
    "make_header",
    "write_context_file",
    "read_context_file",
    "CorruptCheckpointError",
    "DirectoryStore",
    "LocalStore",
    "PartnerStore",
    "IOStore",
    "NDPDrainDaemon",
    "DrainStats",
    "MultilevelCheckpointer",
    "RuntimeMetrics",
    "AsyncLocalWriter",
    "AsyncWriteStats",
    "OnlineMTTIEstimator",
    "DalyIntervalAdvisor",
    "AdaptiveScheduler",
    "CheckpointInfo",
    "VerifyReport",
    "inventory",
    "verify_store",
    "deep_verify",
    "recover",
    "RecoveryResult",
    "NoCheckpointError",
    "compress_stream",
    "decompress_stream",
    "parallel_decompress",
    "iter_compressed_blocks",
    "DEFAULT_BLOCK_SIZE",
]
