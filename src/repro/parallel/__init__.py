"""SPMD parallel substrate: communicator, distributed solver, C/R driver.

The paper's workloads are MPI applications; this subpackage provides the
in-process equivalent — a rank communicator with halo exchanges and
collectives, the HPCCG proxy parallelized over it, and a coordinated-
checkpointing driver with fault injection.
"""

from .comm import Communicator
from .distributed_aero import DistributedAero
from .distributed_cg import DistributedStencilCG
from .distributed_md import DistributedLJMD
from .distributed_smac import DistributedSMAC2D
from .runtime import CheckpointableSolver, CoordinatedRun, RunOutcome
from .slab import SlabDecomposition

__all__ = [
    "Communicator",
    "SlabDecomposition",
    "DistributedStencilCG",
    "DistributedLJMD",
    "DistributedSMAC2D",
    "DistributedAero",
    "CoordinatedRun",
    "RunOutcome",
    "CheckpointableSolver",
]
