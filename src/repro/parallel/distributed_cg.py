"""A distributed conjugate-gradient solver (the HPCCG proxy, parallelized).

Slab-decomposes the 27-point-stencil CG of
:class:`repro.workloads.miniapps._StencilCG` across ``ranks`` along the
grid's first axis: each rank owns a contiguous block of planes, the
axis-0 stencil neighbours come from a periodic halo exchange
(:meth:`Communicator.exchange_halos`), and the CG dot products are
``allreduce_sum`` collectives — the real communication structure of HPCCG.

The distributed matrix-vector product is *bitwise identical* to the
single-domain one (each element accumulates its 26 neighbour terms in the
same order); the dot products sum in rank order, so full CG trajectories
agree to floating-point reduction-order tolerance — both properties are
tested.

Per-rank checkpoint state is exactly the rank's slabs of ``x, r, p, b``,
which plugs straight into the multilevel C/R runtime (one context file per
rank, as BLCR produces).
"""

from __future__ import annotations

import numpy as np

from ..workloads.base import deserialize_state, serialize_state
from .comm import Communicator

__all__ = ["DistributedStencilCG"]


class DistributedStencilCG:
    """27-point-stencil CG over a slab-decomposed periodic grid.

    Parameters
    ----------
    grid:
        Global grid edge length; the domain is ``grid**3``.
    ranks:
        Number of slabs; must divide ``grid``.
    seed:
        RHS initialization seed (matches ``HPCCGProxy(grid, seed)`` when
        ``smooth_rhs`` agrees).
    diag_weight, offdiag_weight, smooth_rhs:
        Operator/RHS knobs, as in the single-domain proxy.
    """

    def __init__(
        self,
        grid: int = 24,
        ranks: int = 4,
        seed: int = 0,
        diag_weight: float = 26.5,
        offdiag_weight: float = 1.0,
        smooth_rhs: bool = False,
    ):
        if grid % ranks != 0:
            raise ValueError(f"ranks ({ranks}) must divide grid ({grid})")
        if grid // ranks < 1:
            raise ValueError("each rank needs at least one plane")
        self.grid = grid
        self.ranks = ranks
        self.planes = grid // ranks
        self.diag_weight = diag_weight
        self.offdiag_weight = offdiag_weight
        self.comm = Communicator(ranks)
        self.iterations = 0

        rng = np.random.default_rng(seed)
        shape = (grid, grid, grid)
        if smooth_rhs:
            ones = np.ones(shape)
            b_global = self._matvec_global(ones) + 1e-4 * rng.standard_normal(shape)
        else:
            b_global = rng.standard_normal(shape)
        self.b = self._split(b_global)
        self.x = self._split(np.zeros(shape))
        self.r = [slab.copy() for slab in self.b]  # r = b - A·0
        self.p = [slab.copy() for slab in self.r]
        self._rho = self._dot(self.r, self.r)

    # -- decomposition helpers -------------------------------------------------------

    def _split(self, full: np.ndarray) -> list[np.ndarray]:
        return [
            full[r * self.planes : (r + 1) * self.planes].copy()
            for r in range(self.ranks)
        ]

    def assemble(self, slabs: list[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank slabs back into the global field."""
        return np.concatenate(slabs, axis=0)

    # -- operator ---------------------------------------------------------------------

    def _matvec_global(self, v: np.ndarray) -> np.ndarray:
        """Reference single-domain operator (used only for RHS setup)."""
        acc = np.zeros_like(v)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    acc += np.roll(np.roll(np.roll(v, dx, 0), dy, 1), dz, 2)
        return self.diag_weight * v - self.offdiag_weight * acc / 26.0

    def matvec(self, slabs: list[np.ndarray]) -> list[np.ndarray]:
        """Distributed operator application with one halo exchange.

        Axis-0 neighbour planes come from the exchange; axis-1/2 shifts
        are rank-local rolls.  Accumulation order matches the global
        operator term for term, so results are bitwise identical.
        """
        lower, upper = self.comm.exchange_halos(slabs)
        out: list[np.ndarray] = []
        for r in range(self.ranks):
            local = slabs[r]
            ext = np.concatenate(
                (lower[r][None, ...], local, upper[r][None, ...]), axis=0
            )
            acc = np.zeros_like(local)
            for dx in (-1, 0, 1):
                # np.roll(v, dx, 0)[i] == v[i - dx]; with the halo at
                # index 0, plane i of the shifted field is ext[1 + i - dx].
                shifted = ext[1 - dx : 1 - dx + self.planes]
                for dy in (-1, 0, 1):
                    for dz in (-1, 0, 1):
                        if dx == dy == dz == 0:
                            continue
                        acc += np.roll(np.roll(shifted, dy, 1), dz, 2)
            out.append(self.diag_weight * local - self.offdiag_weight * acc / 26.0)
        return out

    # -- collectives --------------------------------------------------------------------

    def _dot(self, a: list[np.ndarray], b: list[np.ndarray]) -> float:
        """Distributed dot product: local vdot per rank, then allreduce."""
        locals_ = [float(np.vdot(a[r], b[r]).real) for r in range(self.ranks)]
        return self.comm.allreduce_sum(locals_)

    # -- CG ---------------------------------------------------------------------------------

    def step(self) -> None:
        """One distributed CG iteration."""
        if self._rho < 1e-24:
            return  # converged; hold state (the proxy apps perturb instead)
        ap = self.matvec(self.p)
        pap = self._dot(self.p, ap)
        alpha = self._rho / pap
        for r in range(self.ranks):
            self.x[r] += alpha * self.p[r]
            self.r[r] -= alpha * ap[r]
        rho_new = self._dot(self.r, self.r)
        beta = rho_new / self._rho
        for r in range(self.ranks):
            self.p[r] = self.r[r] + beta * self.p[r]
        self._rho = rho_new
        self.iterations += 1

    def run(self, steps: int) -> None:
        """Advance ``steps`` CG iterations."""
        for _ in range(steps):
            self.step()

    def residual_norm(self) -> float:
        """Global residual 2-norm."""
        return float(np.sqrt(self._rho))

    # -- checkpoint integration -------------------------------------------------------------

    def rank_state(self, rank: int) -> dict[str, np.ndarray]:
        """One rank's checkpointable state (its slabs; halos are derived)."""
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} out of range")
        return {
            "x": self.x[rank],
            "r": self.r[rank],
            "p": self.p[rank],
            "b": self.b[rank],
        }

    def checkpoint_payloads(self) -> dict[int, bytes]:
        """Per-rank serialized context payloads (coordinated checkpoint)."""
        return {
            r: serialize_state(self.rank_state(r)) for r in range(self.ranks)
        }

    def restore_payloads(self, payloads: dict[int, bytes]) -> None:
        """Restore all ranks from recovered context payloads."""
        if set(payloads) != set(range(self.ranks)):
            raise ValueError(
                f"need payloads for ranks 0..{self.ranks - 1}, got {sorted(payloads)}"
            )
        for r, blob in payloads.items():
            state = deserialize_state(blob)
            for name in ("x", "r", "p", "b"):
                slab = getattr(self, name)[r]
                if state[name].shape != slab.shape:
                    raise ValueError(
                        f"rank {r}: {name} shape {state[name].shape} != {slab.shape}"
                    )
                slab[...] = state[name]
        self._rho = self._dot(self.r, self.r)
