"""Shared helpers for 1-D slab decompositions along axis 0.

The distributed CFD-style solvers (SMAC, miniAero) decompose 2-D fields
into contiguous row bands and replace every axis-0 ``np.roll`` with a halo
exchange.  :class:`SlabDecomposition` packages that pattern once: split,
assemble, and the distributed unit roll — built on
:meth:`Communicator.exchange_halos` and bitwise-faithful to the global
``np.roll`` (each output element is a copy, no arithmetic).
"""

from __future__ import annotations

import numpy as np

from .comm import Communicator

__all__ = ["SlabDecomposition"]


class SlabDecomposition:
    """Row-band decomposition of 2-D (or N-D, axis-0) fields."""

    def __init__(self, extent: int, comm: Communicator):
        if extent % comm.size != 0:
            raise ValueError(f"ranks ({comm.size}) must divide extent ({extent})")
        self.extent = extent
        self.comm = comm
        self.rows = extent // comm.size

    def split(self, full: np.ndarray) -> list[np.ndarray]:
        """Slice a global field into per-rank row bands (copies)."""
        if full.shape[0] != self.extent:
            raise ValueError(
                f"field extent {full.shape[0]} != decomposition extent {self.extent}"
            )
        return [
            full[r * self.rows : (r + 1) * self.rows].copy()
            for r in range(self.comm.size)
        ]

    def assemble(self, slabs: list[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank bands into the global field."""
        return np.concatenate(slabs, axis=0)

    def roll0(self, slabs: list[np.ndarray], shift: int) -> list[np.ndarray]:
        """Distributed ``np.roll(field, shift, axis=0)`` for ``shift`` = +-1.

        ``np.roll(v, 1, 0)[i] == v[i-1]``: each band's first row comes from
        the previous rank's last row (periodic wrap), the rest shift down.
        """
        lower, upper = self.comm.exchange_halos(slabs)
        out: list[np.ndarray] = []
        for r in range(self.comm.size):
            local = slabs[r]
            if shift == 1:
                out.append(np.concatenate((lower[r][None, ...], local[:-1]), axis=0))
            elif shift == -1:
                out.append(np.concatenate((local[1:], upper[r][None, ...]), axis=0))
            else:
                raise ValueError("only unit shifts are supported")
        return out
