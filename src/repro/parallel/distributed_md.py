"""A distributed Lennard-Jones MD solver (the CoMD proxy, parallelized).

Atom decomposition: each rank owns a contiguous block of atoms; every
timestep the positions are replicated with an ``allgather`` and each rank
computes forces for its own atoms against all atoms — the classic
replicated-data MD parallelization (appropriate at proxy scales, where the
O(N^2) force evaluation dominates and positions are small).

Matches :class:`repro.workloads.miniapps._LennardJonesMD` numerically:
the per-atom force accumulation sums over all partners in the same index
order, so a distributed step reproduces the single-domain step to
vectorization-order tolerance.  Per-rank checkpoint state is the rank's
position/velocity/force blocks.
"""

from __future__ import annotations

import numpy as np

from ..workloads.base import deserialize_state, serialize_state
from .comm import Communicator

__all__ = ["DistributedLJMD"]


class DistributedLJMD:
    """Velocity-Verlet LJ dynamics over an atom decomposition.

    Parameters mirror the CoMD proxy (density 0.8, soft-core clamp,
    2.5-sigma cutoff).  ``n_atoms`` must be divisible by ``ranks``.
    """

    density = 0.8
    temperature = 0.7
    dt = 0.004
    cutoff = 2.5

    def __init__(self, n_atoms: int = 512, ranks: int = 4, seed: int = 0):
        if n_atoms % ranks != 0:
            raise ValueError(f"ranks ({ranks}) must divide n_atoms ({n_atoms})")
        self.n = n_atoms
        self.ranks = ranks
        self.per_rank = n_atoms // ranks
        self.comm = Communicator(ranks)
        self.steps_taken = 0

        rng = np.random.default_rng(seed)
        self.box = (self.n / self.density) ** (1.0 / 3.0)
        side = int(np.ceil(self.n ** (1.0 / 3.0)))
        grid = np.stack(
            np.meshgrid(*([np.arange(side)] * 3), indexing="ij"), axis=-1
        ).reshape(-1, 3)[: self.n]
        spacing = self.box / side
        pos = (grid + 0.5) * spacing + rng.normal(0, 0.05 * spacing, (self.n, 3))
        vel = rng.normal(0, np.sqrt(self.temperature), (self.n, 3))
        vel -= vel.mean(axis=0)

        self.pos = self._split(pos)
        self.vel = self._split(vel)
        self.force = [np.zeros((self.per_rank, 3)) for _ in range(ranks)]
        self._compute_forces()

    # -- decomposition ------------------------------------------------------------

    def _split(self, full: np.ndarray) -> list[np.ndarray]:
        return [
            full[r * self.per_rank : (r + 1) * self.per_rank].copy()
            for r in range(self.ranks)
        ]

    def assemble(self, blocks: list[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank atom blocks into the global array."""
        return np.concatenate(blocks, axis=0)

    # -- forces -----------------------------------------------------------------------

    def _compute_forces(self) -> None:
        """Replicated-data force evaluation: allgather, then local rows."""
        all_pos = self.comm.allgather_concat(self.pos)
        for r in range(self.ranks):
            local = self.pos[r]
            delta = local[:, None, :] - all_pos[None, :, :]
            delta -= self.box * np.round(delta / self.box)
            r2 = np.einsum("ijk,ijk->ij", delta, delta)
            # Exclude self-interaction: the diagonal of the (local, all)
            # block corresponding to this rank's own atoms.
            base = r * self.per_rank
            rows = np.arange(self.per_rank)
            r2[rows, base + rows] = np.inf
            r2 = np.maximum(r2, 0.64)
            within = r2 < self.cutoff**2
            inv2 = np.where(within, 1.0 / r2, 0.0)
            inv6 = inv2**3
            coeff = 24.0 * (2.0 * inv6 * inv6 - inv6) * inv2
            self.force[r][...] = np.einsum("ij,ijk->ik", coeff, delta)

    # -- dynamics ------------------------------------------------------------------------

    def step(self) -> None:
        """One velocity-Verlet step (one allgather per force evaluation)."""
        for r in range(self.ranks):
            self.vel[r] += 0.5 * self.dt * self.force[r]
            self.pos[r] += self.dt * self.vel[r]
            self.pos[r] %= self.box
        self._compute_forces()
        for r in range(self.ranks):
            self.vel[r] += 0.5 * self.dt * self.force[r]
        self.steps_taken += 1

    def run(self, steps: int) -> None:
        """Advance ``steps`` timesteps."""
        for _ in range(steps):
            self.step()

    def kinetic_energy(self) -> float:
        """Global kinetic energy via allreduce."""
        locals_ = [
            float(0.5 * np.einsum("ij,ij->", self.vel[r], self.vel[r]))
            for r in range(self.ranks)
        ]
        return self.comm.allreduce_sum(locals_)

    # -- checkpoint integration -------------------------------------------------------------

    @property
    def iterations(self) -> int:
        """Alias so the coordinated-run driver can use MD too."""
        return self.steps_taken

    def rank_state(self, rank: int) -> dict[str, np.ndarray]:
        """One rank's checkpointable state."""
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} out of range")
        return {
            "positions": self.pos[rank],
            "velocities": self.vel[rank],
            "forces": self.force[rank],
        }

    def checkpoint_payloads(self) -> dict[int, bytes]:
        """Per-rank serialized context payloads."""
        return {r: serialize_state(self.rank_state(r)) for r in range(self.ranks)}

    def restore_payloads(self, payloads: dict[int, bytes]) -> None:
        """Restore all ranks from recovered context payloads."""
        if set(payloads) != set(range(self.ranks)):
            raise ValueError(
                f"need payloads for ranks 0..{self.ranks - 1}, got {sorted(payloads)}"
            )
        for r, blob in payloads.items():
            state = deserialize_state(blob)
            self.pos[r][...] = state["positions"]
            self.vel[r][...] = state["velocities"]
            self.force[r][...] = state["forces"]
