"""Coordinated C/R driver for SPMD solvers.

Glues a distributed solver (anything exposing ``step`` /
``checkpoint_payloads`` / ``restore_payloads``) to the multilevel C/R
runtime: checkpoints all ranks coordinately every ``checkpoint_every``
iterations, and — for fault-injection experiments — crashes at a chosen
iteration, recovers through the local -> partner -> I/O protocol, and
resumes, verifying that the resumed trajectory reaches the same answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..ckpt.multilevel import MultilevelCheckpointer

__all__ = ["CheckpointableSolver", "CoordinatedRun", "RunOutcome"]


class CheckpointableSolver(Protocol):
    """What the driver needs from a solver."""

    iterations: int

    def step(self) -> None: ...

    def checkpoint_payloads(self) -> dict[int, bytes]: ...

    def restore_payloads(self, payloads: dict[int, bytes]) -> None: ...


@dataclass
class RunOutcome:
    """What happened during a coordinated run.

    ``crashed_at`` / ``recovered_from`` record the fault-injection event
    (None when the run was failure-free); ``checkpoints`` counts
    coordinated commits.
    """

    iterations: int
    checkpoints: int
    crashed_at: int | None = None
    recovered_from: int | None = None
    recovery_level: str | None = None


class CoordinatedRun:
    """Drive a solver under coordinated multilevel checkpointing.

    Parameters
    ----------
    solver:
        The SPMD application.
    checkpointer:
        A started :class:`MultilevelCheckpointer`.
    checkpoint_every:
        Coordinated checkpoint cadence in solver iterations.
    """

    def __init__(
        self,
        solver: CheckpointableSolver,
        checkpointer: MultilevelCheckpointer,
        checkpoint_every: int = 5,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.solver = solver
        self.cr = checkpointer
        self.checkpoint_every = checkpoint_every

    def run(self, iterations: int, crash_at: int | None = None) -> RunOutcome:
        """Advance ``iterations``, optionally crashing once at ``crash_at``.

        A "crash" discards in-flight solver state (simulating process
        death), restores the newest checkpoint, and re-executes from
        there — exactly the C/R loop a resilient job runs.
        """
        outcome = RunOutcome(iterations=0, checkpoints=0)
        done = 0
        crashed = False
        while done < iterations:
            self.solver.step()
            done += 1
            outcome.iterations += 1
            if done % self.checkpoint_every == 0:
                self.cr.checkpoint(
                    self.solver.checkpoint_payloads(), position=float(done)
                )
                outcome.checkpoints += 1
            if crash_at is not None and done == crash_at and not crashed:
                crashed = True
                result = self.cr.restart()
                self.solver.restore_payloads(result.payloads)
                rolled_back_to = int(result.positions[0])
                outcome.crashed_at = crash_at
                outcome.recovered_from = rolled_back_to
                outcome.recovery_level = result.level
                # Lost work: everything after the recovered checkpoint.
                done = rolled_back_to
        return outcome
