"""An in-process SPMD communicator over numpy buffers.

The paper's applications are MPI programs (16 ranks per mini-app under
OpenMPI/BLCR).  This module provides the minimal message-passing substrate
the distributed proxy solvers need, as *synchronous data-parallel*
operations: every call takes the per-rank inputs for all ranks and returns
the per-rank outputs, executing the communication pattern exactly (who
sends what to whom) without OS processes.  That keeps the numerics and the
decomposition honest — halo exchanges, periodic neighbor wrap, reduction
trees — while staying deterministic and testable on one machine.

Collective semantics mirror MPI:

* :meth:`Communicator.allreduce_sum` — one global sum, same value on every
  rank, computed in a fixed rank order (so results are reproducible but,
  like real MPI, not bit-identical to a single-rank summation order).
* :meth:`Communicator.exchange_halos` — nearest-neighbor sendrecv along a
  1-D periodic rank topology.
* :meth:`Communicator.alltoall_concat` / :meth:`Communicator.gather` —
  used by checkpoint coordination and tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["Communicator"]


class Communicator:
    """A fixed-size rank group with MPI-flavoured collectives."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        #: message counters, for tests and traffic accounting
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- point-to-point pattern ---------------------------------------------------

    def exchange_halos(
        self, slabs: Sequence[np.ndarray]
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Periodic nearest-neighbour halo exchange along axis 0.

        Rank ``r`` sends its first plane 'down' to ``r-1`` and its last
        plane 'up' to ``r+1`` (wrapping).  Returns, per rank, the halo
        received from below (``lower[r]``: neighbour ``r-1``'s last plane)
        and from above (``upper[r]``: neighbour ``r+1``'s first plane).
        """
        if len(slabs) != self.size:
            raise ValueError(f"expected {self.size} slabs, got {len(slabs)}")
        lower: list[np.ndarray] = []
        upper: list[np.ndarray] = []
        for r in range(self.size):
            below = slabs[(r - 1) % self.size]
            above = slabs[(r + 1) % self.size]
            lower.append(below[-1].copy())
            upper.append(above[0].copy())
            self.messages_sent += 2
            self.bytes_sent += below[-1].nbytes + above[0].nbytes
        return lower, upper

    # -- collectives ------------------------------------------------------------------

    def allreduce_sum(self, values: Sequence[float]) -> float:
        """Global sum in fixed rank order; every rank gets the same value."""
        if len(values) != self.size:
            raise ValueError(f"expected {self.size} values, got {len(values)}")
        total = 0.0
        for v in values:
            total += float(v)
        self.messages_sent += 2 * (self.size - 1)  # reduce + broadcast tree edges
        return total

    def allreduce_max(self, values: Sequence[float]) -> float:
        """Global max; every rank gets the same value."""
        if len(values) != self.size:
            raise ValueError(f"expected {self.size} values, got {len(values)}")
        self.messages_sent += 2 * (self.size - 1)
        return max(float(v) for v in values)

    def allgather_concat(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-rank arrays along axis 0; every rank gets the
        full result (``MPI_Allgatherv`` over the leading axis)."""
        if len(arrays) != self.size:
            raise ValueError(f"expected {self.size} arrays, got {len(arrays)}")
        full = np.concatenate([np.asarray(a) for a in arrays], axis=0)
        self.messages_sent += 2 * (self.size - 1)
        self.bytes_sent += full.nbytes * max(self.size - 1, 0)
        return full

    def gather(self, values: Sequence[object], root: int = 0) -> list[object]:
        """Gather per-rank values at ``root`` (returned as a list)."""
        if len(values) != self.size:
            raise ValueError(f"expected {self.size} values, got {len(values)}")
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range")
        self.messages_sent += self.size - 1
        return list(values)

    def barrier(self) -> None:
        """Synchronization point (bookkeeping only in-process)."""
        self.messages_sent += self.size - 1

    def alltoall_concat(self, per_rank: Sequence[Sequence[np.ndarray]]) -> list[np.ndarray]:
        """Each rank contributes a list of arrays destined per rank;
        returns, per destination rank, the concatenation over sources.

        Used by tests; mirrors ``MPI_Alltoallv`` + concatenation.
        """
        if len(per_rank) != self.size:
            raise ValueError(f"expected {self.size} contribution lists")
        out: list[np.ndarray] = []
        for dst in range(self.size):
            parts = []
            for src in range(self.size):
                contributions = per_rank[src]
                if len(contributions) != self.size:
                    raise ValueError("each rank must contribute one array per rank")
                parts.append(np.asarray(contributions[dst]))
                if src != dst:
                    self.messages_sent += 1
                    self.bytes_sent += parts[-1].nbytes
            out.append(np.concatenate([p.ravel() for p in parts]))
        return out
