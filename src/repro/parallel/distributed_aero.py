"""A distributed compressible-Euler solver (miniAero, parallelized).

Row-slab decomposition of :class:`repro.workloads.miniapps.MiniAeroProxy`.
Two communication patterns per timestep:

* an ``allreduce_max`` for the **global CFL condition** — the timestep is
  set by the fastest wave *anywhere* in the domain, so every rank must
  agree on ``dt`` before fluxing (forgetting this is a classic
  distributed-CFD bug: ranks integrate different timestep lengths and the
  fields tear along the partition); and
* halo exchanges for the axis-0 Rusanov flux differences.

Term order matches the single-domain kernel exactly, so distributed steps
are bitwise identical (tested).
"""

from __future__ import annotations

import numpy as np

from ..workloads.base import deserialize_state, serialize_state
from .comm import Communicator
from .slab import SlabDecomposition

__all__ = ["DistributedAero"]


class DistributedAero:
    """2-D finite-volume Euler over a row decomposition.

    Physics parameters match the single-domain proxy (gamma 1.4, CFL 0.4,
    diagonal Sod initial condition with seeded density noise).
    """

    gamma = 1.4
    cfl = 0.4

    def __init__(self, grid: int = 96, ranks: int = 4, seed: int = 0):
        self.grid = grid
        self.ranks = ranks
        self.comm = Communicator(ranks)
        self.slabs = SlabDecomposition(grid, self.comm)
        self.h = 1.0 / grid
        self.steps_taken = 0

        rng = np.random.default_rng(seed)
        shape = (grid, grid)
        xx, yy = np.meshgrid(
            np.linspace(0, 1, grid, endpoint=False),
            np.linspace(0, 1, grid, endpoint=False),
            indexing="ij",
        )
        left = (xx + yy) < 1.0
        rho = np.where(left, 1.0, 0.125) + 0.01 * rng.standard_normal(shape)
        pres = np.where(left, 1.0, 0.1)
        self.rho = self.slabs.split(rho)
        self.mx = self.slabs.split(np.zeros(shape))
        self.my = self.slabs.split(np.zeros(shape))
        self.energy = self.slabs.split(pres / (self.gamma - 1.0))

    # -- local thermodynamics ----------------------------------------------------------

    def _pressure(self, r: int) -> np.ndarray:
        kinetic = 0.5 * (self.mx[r] ** 2 + self.my[r] ** 2) / self.rho[r]
        return np.maximum((self.gamma - 1.0) * (self.energy[r] - kinetic), 1e-8)

    def _global_smax(self) -> float:
        """The global max wave speed (two allreduce_max): the shared dt.

        The x- and y-direction maxima are reduced *separately* — they can
        live on different ranks, and the single-domain kernel sums the two
        global maxima.
        """
        loc_x, loc_y = [], []
        for r in range(self.ranks):
            p = self._pressure(r)
            u = self.mx[r] / self.rho[r]
            v = self.my[r] / self.rho[r]
            c = np.sqrt(self.gamma * p / self.rho[r])
            loc_x.append(float((np.abs(u) + c).max()))
            loc_y.append(float((np.abs(v) + c).max()))
        return (
            self.comm.allreduce_max(loc_x) + self.comm.allreduce_max(loc_y) + 1e-12
        )

    # -- fluxes ---------------------------------------------------------------------------

    def _flux_x(self, q: list[np.ndarray], f: list[np.ndarray], smax: float) -> list[np.ndarray]:
        """Axis-0 Rusanov flux difference (three halo exchanges)."""
        q_up = self.slabs.roll0(q, -1)
        f_up = self.slabs.roll0(f, -1)
        fl = [
            0.5 * (f[r] + f_up[r]) - 0.5 * smax * (q_up[r] - q[r])
            for r in range(self.ranks)
        ]
        fl_down = self.slabs.roll0(fl, 1)
        return [(fl[r] - fl_down[r]) / self.h for r in range(self.ranks)]

    def _flux_y(self, q: list[np.ndarray], f: list[np.ndarray], smax: float) -> list[np.ndarray]:
        """Axis-1 Rusanov flux difference (rank-local)."""
        out = []
        for r in range(self.ranks):
            fl = 0.5 * (f[r] + np.roll(f[r], -1, 1)) - 0.5 * smax * (
                np.roll(q[r], -1, 1) - q[r]
            )
            out.append((fl - np.roll(fl, 1, 1)) / self.h)
        return out

    def step(self) -> None:
        """One Rusanov update with a globally-agreed timestep."""
        smax = self._global_smax()
        dt = self.cfl * self.h / smax

        rho, mx, my, en = self.rho, self.mx, self.my, self.energy
        p = [self._pressure(r) for r in range(self.ranks)]
        u = [mx[r] / rho[r] for r in range(self.ranks)]
        v = [my[r] / rho[r] for r in range(self.ranks)]

        d_rho_x = self._flux_x(rho, mx, smax)
        d_rho_y = self._flux_y(rho, my, smax)
        d_mx_x = self._flux_x(mx, [mx[r] * u[r] + p[r] for r in range(self.ranks)], smax)
        d_mx_y = self._flux_y(mx, [mx[r] * v[r] for r in range(self.ranks)], smax)
        d_my_x = self._flux_x(my, [my[r] * u[r] for r in range(self.ranks)], smax)
        d_my_y = self._flux_y(my, [my[r] * v[r] + p[r] for r in range(self.ranks)], smax)
        d_en_x = self._flux_x(en, [(en[r] + p[r]) * u[r] for r in range(self.ranks)], smax)
        d_en_y = self._flux_y(en, [(en[r] + p[r]) * v[r] for r in range(self.ranks)], smax)

        for r in range(self.ranks):
            self.rho[r] = np.maximum(rho[r] - dt * (d_rho_x[r] + d_rho_y[r]), 1e-8)
            self.mx[r] = mx[r] - dt * (d_mx_x[r] + d_mx_y[r])
            self.my[r] = my[r] - dt * (d_my_x[r] + d_my_y[r])
            self.energy[r] = np.maximum(en[r] - dt * (d_en_x[r] + d_en_y[r]), 1e-8)
        self.steps_taken += 1

    def run(self, steps: int) -> None:
        """Advance ``steps`` timesteps."""
        for _ in range(steps):
            self.step()

    def total_mass(self) -> float:
        """Conserved global mass via an allreduce."""
        locals_ = [float(self.rho[r].sum() * self.h**2) for r in range(self.ranks)]
        return self.comm.allreduce_sum(locals_)

    # -- checkpoint integration ------------------------------------------------------------

    @property
    def iterations(self) -> int:
        """Alias for the coordinated-run driver."""
        return self.steps_taken

    def rank_state(self, rank: int) -> dict[str, np.ndarray]:
        """One rank's checkpointable state."""
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} out of range")
        return {
            "rho": self.rho[rank],
            "mx": self.mx[rank],
            "my": self.my[rank],
            "energy": self.energy[rank],
        }

    def checkpoint_payloads(self) -> dict[int, bytes]:
        """Per-rank serialized context payloads."""
        return {r: serialize_state(self.rank_state(r)) for r in range(self.ranks)}

    def restore_payloads(self, payloads: dict[int, bytes]) -> None:
        """Restore all ranks from recovered context payloads."""
        if set(payloads) != set(range(self.ranks)):
            raise ValueError(
                f"need payloads for ranks 0..{self.ranks - 1}, got {sorted(payloads)}"
            )
        for r, blob in payloads.items():
            state = deserialize_state(blob)
            self.rho[r] = state["rho"].copy()
            self.mx[r] = state["mx"].copy()
            self.my[r] = state["my"].copy()
            self.energy[r] = state["energy"].copy()
