"""A distributed 2-D incompressible-flow solver (miniSMAC2D, parallelized).

Row-slab decomposition of :class:`repro.workloads.miniapps.MiniSMAC2DProxy`:
each rank owns a contiguous band of grid rows; every axis-0 finite-
difference shift becomes a halo exchange, axis-1 shifts stay local.  The
SMAC fractional step needs one exchange for the predictor's (u, v), one
per Jacobi pressure sweep (8 of them), and one for the corrector's
pressure gradient — the heaviest communication pattern of the three
distributed proxies, which is exactly why real CFD codes care about
checkpoint offload.

Every distributed stencil term accumulates in the same order as the
single-domain implementation, so a distributed step is bitwise identical
to the reference (tested).
"""

from __future__ import annotations

import numpy as np

from ..workloads.base import deserialize_state, serialize_state
from .comm import Communicator
from .slab import SlabDecomposition

__all__ = ["DistributedSMAC2D"]


class DistributedSMAC2D:
    """SMAC-style lid-driven cavity flow over a row decomposition.

    ``grid`` must be divisible by ``ranks``; physics parameters match the
    single-domain proxy (Re 400, dt 0.002, 8 Jacobi sweeps).
    """

    reynolds = 400.0
    dt = 0.002
    jacobi_sweeps = 8

    def __init__(self, grid: int = 96, ranks: int = 4, seed: int = 0):
        self.grid = grid
        self.ranks = ranks
        self.comm = Communicator(ranks)
        self.slabs = SlabDecomposition(grid, self.comm)
        self.rows = self.slabs.rows
        self.h = 1.0 / grid
        self.steps_taken = 0

        rng = np.random.default_rng(seed)
        shape = (grid, grid)
        self.u = self._split(0.01 * rng.standard_normal(shape))
        self.v = self._split(0.01 * rng.standard_normal(shape))
        self.pressure = self._split(np.zeros(shape))

    # -- decomposition (delegates to SlabDecomposition) ------------------------------

    def _split(self, full: np.ndarray) -> list[np.ndarray]:
        return self.slabs.split(full)

    def assemble(self, slabs: list[np.ndarray]) -> np.ndarray:
        """Concatenate row slabs back into the global field."""
        return self.slabs.assemble(slabs)

    def _roll0(self, slabs: list[np.ndarray], shift: int) -> list[np.ndarray]:
        """Distributed ``np.roll(field, shift, axis=0)`` for shift = +-1."""
        return self.slabs.roll0(slabs, shift)

    # -- stencil operators (same term order as the single-domain proxy) ------------------

    def _lap(self, f: list[np.ndarray]) -> list[np.ndarray]:
        up = self._roll0(f, 1)
        down = self._roll0(f, -1)
        return [
            (up[r] + down[r] + np.roll(f[r], 1, 1) + np.roll(f[r], -1, 1) - 4 * f[r])
            / self.h**2
            for r in range(self.ranks)
        ]

    def _ddx(self, f: list[np.ndarray]) -> list[np.ndarray]:
        up = self._roll0(f, 1)
        down = self._roll0(f, -1)
        return [(down[r] - up[r]) / (2 * self.h) for r in range(self.ranks)]

    def _ddy(self, f: list[np.ndarray]) -> list[np.ndarray]:
        return [
            (np.roll(f[r], -1, 1) - np.roll(f[r], 1, 1)) / (2 * self.h)
            for r in range(self.ranks)
        ]

    # -- the SMAC step ---------------------------------------------------------------------

    def step(self) -> None:
        """One fractional step: predict, project (Jacobi), correct."""
        nu = 1.0 / self.reynolds
        dt = self.dt
        u, v = self.u, self.v

        dudx, dudy, lap_u = self._ddx(u), self._ddy(u), self._lap(u)
        dvdx, dvdy, lap_v = self._ddx(v), self._ddy(v), self._lap(v)
        u_star = [
            u[r] + dt * (-u[r] * dudx[r] - v[r] * dudy[r] + nu * lap_u[r])
            for r in range(self.ranks)
        ]
        v_star = [
            v[r] + dt * (-u[r] * dvdx[r] - v[r] * dvdy[r] + nu * lap_v[r])
            for r in range(self.ranks)
        ]
        # Lid forcing on the top columns (axis 1 is rank-local).
        for r in range(self.ranks):
            u_star[r][:, -2:] += dt * 5.0 * (1.0 - u_star[r][:, -2:])

        dus = self._ddx(u_star)
        dvs = self._ddy(v_star)
        div = [(dus[r] + dvs[r]) / dt for r in range(self.ranks)]
        p = self.pressure
        for _ in range(self.jacobi_sweeps):
            up = self._roll0(p, 1)
            down = self._roll0(p, -1)
            p = [
                (
                    up[r] + down[r] + np.roll(p[r], 1, 1) + np.roll(p[r], -1, 1)
                    - self.h**2 * div[r]
                )
                / 4.0
                for r in range(self.ranks)
            ]
        self.pressure = p

        dpx = self._ddx(p)
        dpy = self._ddy(p)
        self.u = [u_star[r] - dt * dpx[r] for r in range(self.ranks)]
        self.v = [v_star[r] - dt * dpy[r] for r in range(self.ranks)]
        self.steps_taken += 1

    def run(self, steps: int) -> None:
        """Advance ``steps`` timesteps."""
        for _ in range(steps):
            self.step()

    def max_divergence(self) -> float:
        """Global max |div(u)| via an allreduce."""
        dux = self._ddx(self.u)
        dvy = self._ddy(self.v)
        locals_ = [
            float(np.abs(dux[r] + dvy[r]).max()) for r in range(self.ranks)
        ]
        return self.comm.allreduce_max(locals_)

    # -- checkpoint integration ------------------------------------------------------------

    @property
    def iterations(self) -> int:
        """Alias for the coordinated-run driver."""
        return self.steps_taken

    def rank_state(self, rank: int) -> dict[str, np.ndarray]:
        """One rank's checkpointable state."""
        if not 0 <= rank < self.ranks:
            raise ValueError(f"rank {rank} out of range")
        return {
            "u": self.u[rank],
            "v": self.v[rank],
            "pressure": self.pressure[rank],
        }

    def checkpoint_payloads(self) -> dict[int, bytes]:
        """Per-rank serialized context payloads."""
        return {r: serialize_state(self.rank_state(r)) for r in range(self.ranks)}

    def restore_payloads(self, payloads: dict[int, bytes]) -> None:
        """Restore all ranks from recovered context payloads."""
        if set(payloads) != set(range(self.ranks)):
            raise ValueError(
                f"need payloads for ranks 0..{self.ranks - 1}, got {sorted(payloads)}"
            )
        for r, blob in payloads.items():
            state = deserialize_state(blob)
            self.u[r] = state["u"].copy()
            self.v[r] = state["v"].copy()
            self.pressure[r] = state["pressure"].copy()
