"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro experiment figure6
    python -m repro experiment table2 -o source=paper
    python -m repro experiment figure8 --json fig8.json
    python -m repro experiment validation --jobs 4 --no-cache
    python -m repro experiment validation --engine des
    python -m repro all --skip-slow
    python -m repro report -o report.md --skip-slow
    python -m repro calibrate
    python -m repro trace --out run.jsonl experiment figure7
    python -m repro metrics --json drift.json
    python -m repro serve --port 8077 --batch-window 0.002
    python -m repro serve --slo simulate=50ms:0.99 --slo sweep=250ms:0.95
    python -m repro top --port 8077 --interval 1

Options after ``-o``/``--override`` are ``key=value`` pairs forwarded to
the experiment's ``run()`` (values parsed as Python literals when
possible).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Sequence

from .experiments import REGISTRY, run_experiment
from .experiments.common import ExperimentResult

__all__ = ["main"]

#: Experiments that take minutes (live compression study / simulations).
SLOW_EXPERIMENTS = (
    "table2",
    "validation",
    "figure3",
    "ablation-methods",
    "ablation-cluster",
    "ablation-failure-dist",
    "ablation-delta",
    "ablation-partner",
    "ablation-interval",
)


def _runtime_kwargs(name: str, args: argparse.Namespace) -> dict[str, object]:
    """Batch-runtime options (``--jobs``/``--no-cache``/``--engine``) an
    experiment accepts.

    Experiments opt in by taking ``jobs``/``cache``/``engine`` keyword
    parameters (the Monte-Carlo ones do); everything else runs untouched,
    so the flags are safe to pass globally.
    """
    import inspect

    accepted = inspect.signature(REGISTRY[name]).parameters
    out: dict[str, object] = {}
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        if jobs < 0:
            raise SystemExit(f"--jobs must be >= 0 (0 = one per core): {jobs}")
        if "jobs" in accepted:
            out["jobs"] = jobs if jobs > 0 else None  # --jobs 0 => auto-detect
    if "cache" in accepted and not getattr(args, "no_cache", False):
        from .simulation.pool import ResultCache

        out["cache"] = ResultCache.default()
    engine = getattr(args, "engine", None)
    if engine is not None and "engine" in accepted:
        out["engine"] = engine
    return out


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="worker processes for Monte-Carlo experiments (0 = one per core)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk simulation result cache",
    )
    parser.add_argument(
        "--engine",
        choices=["des", "fast"],
        help="simulation engine for Monte-Carlo experiments: the vectorized "
        "batch fastpath (default where supported) or the event-level DES",
    )


def _parse_overrides(pairs: list[str]) -> dict[str, object]:
    out: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"override must be key=value: {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            out[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            out[key] = raw
    return out


def _cmd_list(_: argparse.Namespace) -> int:
    for name in REGISTRY:
        slow = "  (slow)" if name in SLOW_EXPERIMENTS else ""
        print(f"{name}{slow}")
    return 0


def _result_to_json(result: ExperimentResult) -> dict:
    return {
        "experiment": result.experiment,
        "title": result.title,
        "headline": result.headline,
        "rows": result.rows,
        "text": result.text,
    }


def _cmd_experiment(args: argparse.Namespace) -> int:
    kwargs = _runtime_kwargs(args.name, args)
    kwargs.update(_parse_overrides(args.override))
    result = run_experiment(args.name, **kwargs)
    print(result)
    if args.json:
        Path(args.json).write_text(
            json.dumps(_result_to_json(result), indent=1, default=str)
        )
        print(f"(wrote {args.json})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    sections = []
    for name in REGISTRY:
        if args.skip_slow and name in SLOW_EXPERIMENTS:
            continue
        result = run_experiment(name, **_runtime_kwargs(name, args))
        sections.append(f"## {result.title}\n\n```\n{result.text}\n```\n")
        print(f"ran {name}", file=sys.stderr)
    body = "# repro — regenerated experiments\n\n" + "\n".join(sections)
    if args.output:
        Path(args.output).write_text(body)
        print(f"wrote {args.output}")
    else:
        print(body)
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    failures = 0
    for name in REGISTRY:
        if args.skip_slow and name in SLOW_EXPERIMENTS:
            print(f"-- skipping {name} (slow)")
            continue
        try:
            print(run_experiment(name, **_runtime_kwargs(name, args)))
            print()
        except Exception as exc:  # pragma: no cover - defensive CLI surface
            failures += 1
            print(f"!! {name} failed: {exc}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_ckpt(args: argparse.Namespace) -> int:
    from .ckpt.backends import DirectoryStore
    from .ckpt.tools import deep_verify, discover_apps, inventory, verify_store

    stores = [DirectoryStore(root) for root in args.roots]
    for store, root in zip(stores, args.roots):
        store.level = str(root)
    apps = args.app and [args.app] or sorted(
        {a for root in args.roots for a in discover_apps(root)}
    )
    if not apps:
        print("no checkpointed applications found", file=sys.stderr)
        return 1
    status = 0
    for app in apps:
        print(f"== {app} ==")
        if args.action == "ls":
            for store in stores:
                for info in inventory(app, store):
                    delta = f" delta-of={info.delta_base}" if info.delta_base else ""
                    codec = f" codec={info.codec}" if info.codec else ""
                    print(
                        f"  [{store.level}] ckpt {info.ckpt_id:6d}  "
                        f"ranks={info.ranks}  pos={info.position:g}  "
                        f"{info.stored_bytes / 1e6:.2f} MB"
                        f" ({info.stored_factor:.0%} reduced){codec}{delta}"
                    )
        else:  # verify
            for store in stores:
                report = verify_store(app, store)
                print(f"  {report.summary()}")
                if not report.healthy:
                    status = 1
            recoverable = deep_verify(app, stores)
            print(f"  end-to-end recoverable: {recoverable}")
            if not recoverable:
                status = 1
    return status


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from .obs import trace as obs_trace

    if not args.rest or args.rest[0] == "trace":
        raise SystemExit("usage: repro trace [--out PATH] <command> [args...]")
    out = args.out
    # Spawned/forked workers read REPRO_TRACE at import and append to the
    # same file (O_APPEND keeps lines whole across processes).
    os.environ[obs_trace.ENV_VAR] = out
    tracer = obs_trace.configure(out)
    try:
        return main(list(args.rest))
    finally:
        print(f"trace: {tracer.summary()}", file=sys.stderr)
        obs_trace.disable()
        os.environ.pop(obs_trace.ENV_VAR, None)


def _cmd_metrics(args: argparse.Namespace) -> int:
    # Lazy import: obs.demo pulls in the checkpoint runtime + simulator.
    from .obs.demo import run_demo

    result = run_demo(
        steps=args.steps,
        include_breakdown=not args.no_breakdown,
    )
    print(result.render())
    if args.prometheus:
        from .obs import metrics as obs_metrics

        print()
        print(obs_metrics.REGISTRY.render_prometheus())
    if args.json:
        Path(args.json).write_text(json.dumps(result.as_dict(), indent=1, default=str))
        print(f"(wrote {args.json})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs.slo import SLOError, parse_slo
    from .service import ServiceConfig, serve, serve_prefork
    from .simulation.pool import ResultCache

    if args.jobs is not None and args.jobs < 0:
        raise SystemExit(f"--jobs must be >= 0 (0 = one per core): {args.jobs}")
    if args.procs < 1:
        raise SystemExit(f"--procs must be >= 1: {args.procs}")
    if args.queue_budget is not None and args.queue_budget <= 0:
        raise SystemExit(f"--queue-budget must be > 0 seconds: {args.queue_budget}")
    if args.aging <= 0:
        raise SystemExit(f"--aging must be > 0 seconds: {args.aging}")
    try:
        slo = tuple(parse_slo(spec) for spec in args.slo)
    except SLOError as exc:
        raise SystemExit(f"--slo: {exc}")
    cache = None if args.no_cache else ResultCache.default()
    jobs = None if args.jobs == 0 else (args.jobs if args.jobs else 1)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=jobs,
        cache=cache,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
        coalesce=not args.no_coalesce,
        slo=slo,
        queue_budget=args.queue_budget,
        aging=args.aging,
    )
    if args.procs > 1:
        serve_prefork(config, procs=args.procs)
    else:
        serve(config)
    return 0


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:8.2f}ms"


def render_top(stats: dict) -> str:
    """One frame of the ``repro top`` dashboard from a ``/stats`` payload."""
    lines = [
        f"repro top — uptime {stats.get('uptime_seconds', 0.0):.0f}s, "
        f"requests {stats.get('requests', 0)}"
    ]
    latency = stats.get("latency") or {}
    if latency:
        lines.append("")
        lines.append("  latency            count        p50        p90        p99")
        for endpoint in sorted(latency):
            row = latency[endpoint]
            lines.append(
                f"  {endpoint:<16s} {row.get('count', 0):8d} "
                f"{_fmt_ms(row.get('p50', 0.0))} {_fmt_ms(row.get('p90', 0.0))} "
                f"{_fmt_ms(row.get('p99', 0.0))}"
            )
    slo = stats.get("slo") or {}
    if slo:
        lines.append("")
        lines.append("  slo                objective     good     bad   burn 5m   burn 1h")
        for route in sorted(slo):
            row = slo[route]
            windows = row.get("windows", {})
            b5 = windows.get("5m", {}).get("burn_rate", 0.0)
            b1 = windows.get("1h", {}).get("burn_rate", 0.0)
            flag = "  !!" if max(b5, b1) > 1.0 else ""
            lines.append(
                f"  {route:<16s} {row.get('objective', ''):>10s} "
                f"{row.get('good', 0):8d} {row.get('bad', 0):7d} "
                f"{b5:9.2f} {b1:9.2f}{flag}"
            )
    batch = stats.get("batch") or {}
    coalesce = stats.get("coalesce") or {}
    cache = stats.get("cache") or {}
    lines.append("")
    batch_line = (
        f"  batch: submitted={batch.get('submitted', 0)} "
        f"mean_fast={batch.get('mean_fast_batch', 0.0):.1f} "
        f"max={batch.get('max_batch_seen', 0)} "
        f"queue={batch.get('queue_depth', 0)} "
        f"cache_hits={batch.get('cache_hits', 0)}"
    )
    if batch.get("shed") or batch.get("expired"):
        batch_line += f" shed={batch.get('shed', 0)} expired={batch.get('expired', 0)}"
    lines.append(batch_line)
    lines.append(
        f"  coalesce: primary={coalesce.get('primary', 0)} "
        f"coalesced={coalesce.get('coalesced', 0)} "
        f"inflight={coalesce.get('inflight', 0)}"
    )
    lines.append(
        f"  cache: enabled={cache.get('enabled', False)} "
        f"hits={cache.get('hits', 0)} misses={cache.get('misses', 0)}"
    )
    workers = stats.get("workers") or []
    if workers:
        # Prefork group: the scraped worker merged every sibling's
        # published snapshot; show one row per worker.
        lines.append("")
        lines.append(
            "  worker   requests        p99   queue    shed  expired"
        )
        for w in workers:
            wbatch = w.get("batch") or {}
            wlat = w.get("latency") or {}
            p99 = max(
                (row.get("p99", 0.0) for row in wlat.values()), default=0.0
            )
            lines.append(
                f"  {w.get('worker', '?'):>6}   {w.get('requests', 0):8d} "
                f"{_fmt_ms(p99)} {wbatch.get('queue_depth', 0):7d} "
                f"{wbatch.get('shed', 0):7d} {wbatch.get('expired', 0):8d}"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .service.client import ServiceClient, ServiceError

    frames = 0
    try:
        with ServiceClient(args.host, args.port, timeout=5.0) as client:
            while True:
                try:
                    stats = client.stats()
                except (ServiceError, OSError) as exc:
                    print(
                        f"repro top: {args.host}:{args.port} unreachable: {exc}",
                        file=sys.stderr,
                    )
                    return 1
                if not args.once and frames:
                    # ANSI home + clear-below: redraw in place like top(1).
                    print("\x1b[H\x1b[J", end="")
                print(render_top(stats))
                frames += 1
                if args.once or (args.count and frames >= args.count):
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_calibrate(_: argparse.Namespace) -> int:
    from .compression.study import paper_factor
    from .workloads.calibration import calibrate_precision, gzip1_factor
    from .workloads.miniapps import APP_REGISTRY, make_app

    print("Recalibrating proxy precision knobs against Table 2 gzip(1) factors:")
    for name in APP_REGISTRY:
        target = paper_factor(name, "gzip(1)")
        bits = calibrate_precision(
            lambda b, n=name: make_app(n, seed=0, precision_bits=b), target
        )
        app = make_app(name, seed=0, precision_bits=bits)
        app.run(5)
        achieved = gzip1_factor(app.checkpoint_bytes())
        print(f"  {name:11s} target={target:.3f} bits={bits:6.2f} achieved={achieved:.3f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Leveraging NDP for High-Performance "
        "Checkpoint/Restart' (SC'17): regenerate paper tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        func=_cmd_list
    )

    p_exp = sub.add_parser("experiment", help="run one experiment")
    p_exp.add_argument("name", choices=sorted(REGISTRY))
    p_exp.add_argument(
        "-o",
        "--override",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="keyword override forwarded to the experiment's run()",
    )
    p_exp.add_argument("--json", metavar="PATH", help="also write the result as JSON")
    _add_runtime_flags(p_exp)
    p_exp.set_defaults(func=_cmd_experiment)

    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--skip-slow", action="store_true", help="skip slow experiments")
    _add_runtime_flags(p_all)
    p_all.set_defaults(func=_cmd_all)

    p_rep = sub.add_parser("report", help="write a markdown report of all experiments")
    p_rep.add_argument("-o", "--output", metavar="PATH", help="output file (default stdout)")
    p_rep.add_argument("--skip-slow", action="store_true", help="skip slow experiments")
    _add_runtime_flags(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    p_ck = sub.add_parser("ckpt", help="inspect / verify checkpoint stores")
    p_ck.add_argument("action", choices=["ls", "verify"])
    p_ck.add_argument("roots", nargs="+", help="store root directories (fastest first)")
    p_ck.add_argument("--app", help="restrict to one application id")
    p_ck.set_defaults(func=_cmd_ckpt)

    p_tr = sub.add_parser(
        "trace",
        help="run any repro command with structured tracing to a JSONL file",
    )
    p_tr.add_argument(
        "--out",
        metavar="PATH",
        default="trace.jsonl",
        help="JSON-lines output path (default: trace.jsonl)",
    )
    p_tr.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        metavar="command",
        help="the repro command to run under tracing",
    )
    p_tr.set_defaults(func=_cmd_trace)

    p_me = sub.add_parser(
        "metrics",
        help="run the calibrated C/R demo and print measured-vs-model drift tables",
    )
    p_me.add_argument(
        "--steps", type=int, default=6, help="checkpoints per mode (default 6)"
    )
    p_me.add_argument(
        "--no-breakdown",
        action="store_true",
        help="skip the simulator-vs-model overhead breakdown report",
    )
    p_me.add_argument(
        "--prometheus",
        action="store_true",
        help="also print the metrics registry in Prometheus text format",
    )
    p_me.add_argument("--json", metavar="PATH", help="also write the report as JSON")
    p_me.set_defaults(func=_cmd_metrics)

    p_sv = sub.add_parser(
        "serve",
        help="run the capacity-planning HTTP service (simulate/sweep/optimize "
        "with request coalescing and micro-batching; see docs/SERVICE.md)",
    )
    p_sv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_sv.add_argument("--port", type=int, default=8077, help="bind port (0 = any free)")
    p_sv.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="pool workers per dispatched batch (0 = one per core; default 1, "
        "inline in the dispatch thread)",
    )
    p_sv.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="bounded micro-batching delay (default 2 ms)",
    )
    p_sv.add_argument(
        "--max-batch",
        type=int,
        default=256,
        metavar="N",
        help="max simulate jobs fused per batch (1 disables fusion)",
    )
    p_sv.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        metavar="N",
        help="concurrent batch dispatches (default 2)",
    )
    p_sv.add_argument(
        "--no-cache", action="store_true", help="skip the shared on-disk result cache"
    )
    p_sv.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable identical-in-flight-request coalescing (benchmark baseline)",
    )
    p_sv.add_argument(
        "--slo",
        action="append",
        default=[],
        metavar="ROUTE=THRESHOLD:TARGET",
        help="latency SLO per /v1 route, e.g. simulate=50ms:0.99 (repeatable); "
        "tracked as rolling good/bad counters and 5m/1h burn rates in "
        "/stats and /metrics",
    )
    p_sv.add_argument(
        "--procs",
        type=int,
        default=1,
        metavar="N",
        help="prefork N worker processes sharing the port via SO_REUSEPORT "
        "(falls back to an inherited listener where unavailable); each "
        "worker runs the full server stack, shares the on-disk cache, and "
        "drains gracefully on SIGTERM",
    )
    p_sv.add_argument(
        "--queue-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="admission-control budget: shed new work with 503 + Retry-After "
        "once the batch queue's estimated drain time exceeds this "
        "(default: never shed)",
    )
    p_sv.add_argument(
        "--aging",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="queue seconds that promote a waiting request one priority "
        "class (starvation control; default 1 s)",
    )
    p_sv.set_defaults(func=_cmd_serve)

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard polling a running service's /stats "
        "(latency percentiles, SLO burn rates, batching/coalescing counters)",
    )
    p_top.add_argument("--host", default="127.0.0.1", help="service address")
    p_top.add_argument("--port", type=int, default=8077, help="service port")
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default 2 s)",
    )
    p_top.add_argument(
        "--count",
        type=int,
        default=0,
        metavar="N",
        help="exit after N frames (0 = run until interrupted)",
    )
    p_top.add_argument(
        "--once", action="store_true", help="print a single frame and exit"
    )
    p_top.set_defaults(func=_cmd_top)

    sub.add_parser(
        "calibrate", help="recompute proxy-app precision calibration"
    ).set_defaults(func=_cmd_calibrate)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: normal CLI etiquette is
        # to exit quietly rather than traceback.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
