"""Asyncio HTTP/JSON server for the capacity-planning service.

Hand-rolled HTTP/1.1 over ``asyncio.start_server`` — no framework, no
third-party deps — with persistent connections (keep-alive matters: the
closed-loop load generator reuses sockets, and per-request TCP setup
would dominate at millisecond service times).

Endpoints (see ``docs/SERVICE.md`` for the full schema):

* ``POST /v1/simulate`` — one scenario; coalesced with identical
  in-flight configs, micro-batched with compatible concurrent ones.
* ``POST /v1/sweep`` — a list of cells x a seed axis; every row rides
  the same coalescer/batcher, so concurrent sweeps fuse with each other
  and with single simulates.
* ``POST /v1/optimize`` — optimal host ratio via the process-wide
  memoized model (``core.optimizer._MEMO``), coalesced by scenario.
* ``GET /metrics`` — the process-global metrics registry in Prometheus
  text format; ``GET /healthz`` — liveness; ``GET /stats`` — service
  counters as JSON (what the benchmark reads).

Shared state is the point: one :class:`~repro.simulation.pool.ResultCache`,
one optimizer memo, one metrics registry across every client.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence
from urllib.parse import parse_qs

from ..core.optimizer import optimal_host
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.flight import FlightRecorder
from ..obs.slo import SLOTarget, SLOTracker
from ..simulation.batch import _t95
from ..simulation.pool import ResultCache, config_key, run_simulations
from ..simulation.simulator import SimConfig
from ..simulation.stats import SimulationResult
from . import timing as req_timing
from .batcher import Batcher
from .coalescer import Coalescer
from .protocol import (
    ProtocolError,
    canonical_dumps,
    compression_from_json,
    config_from_json,
    model_result_to_json,
    params_from_json,
    result_to_json,
    sweep_rows_from_json,
)

__all__ = ["BackgroundServer", "ServiceConfig", "ServiceServer", "serve"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024

_TRACE_ID_CHARS = frozenset("0123456789abcdefABCDEF-")


def _clean_trace_id(raw: str | None) -> str | None:
    """A client-supplied ``X-Repro-Trace`` id, sanitized: hex digits and
    dashes only, bounded length (it lands in JSONL traces and response
    headers, so arbitrary bytes are rejected rather than escaped)."""
    if not raw:
        return None
    raw = raw.strip()
    if 1 <= len(raw) <= 64 and set(raw) <= _TRACE_ID_CHARS:
        return raw.lower()
    return None

_REQUESTS = obs_metrics.REGISTRY.counter(
    "service_requests_total", "HTTP requests served, by endpoint and status"
)
_REQUEST_SECONDS = obs_metrics.REGISTRY.histogram(
    "service_request_seconds", "request wall time, by endpoint"
)


@dataclass(frozen=True)
class ServiceConfig:
    """Server tuning knobs.

    Attributes
    ----------
    host, port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`ServiceServer.port`).
    jobs:
        Worker processes per dispatched batch
        (:func:`~repro.simulation.pool.run_simulations` semantics:
        1 = inline in the dispatch thread, ``None`` = one per core).
    cache:
        Shared on-disk result cache; ``None`` disables it.
    batch_window:
        Bounded micro-batching delay, seconds.
    max_batch:
        Fusion cap per dispatched batch; 1 disables fusion (the
        benchmark's naive baseline).
    max_inflight:
        Concurrent batch dispatches (executor threads).
    coalesce:
        Deduplicate identical in-flight configs.  Off, every duplicate
        computes independently (the naive baseline).
    slo:
        Latency objectives (:func:`repro.obs.slo.parse_slo` specs like
        ``simulate=50ms:0.99``); burn rates surface in ``/stats`` and
        ``/metrics``.
    flight_capacity:
        Requests retained by the always-on flight recorder
        (``/debug/requests``, ``/debug/trace/<id>``).
    """

    host: str = "127.0.0.1"
    port: int = 8077
    jobs: int | None = 1
    cache: ResultCache | None = None
    batch_window: float = 0.002
    max_batch: int = 256
    max_inflight: int = 2
    coalesce: bool = True
    slo: tuple[SLOTarget, ...] = ()
    flight_capacity: int = 256


class ServiceServer:
    """One service instance: shared state + the asyncio protocol loop."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = self.config.cache
        self.coalescer = Coalescer()
        self.batcher = Batcher(
            self._run_batch,
            window=self.config.batch_window,
            max_batch=self.config.max_batch,
            max_inflight=self.config.max_inflight,
            cache=self.cache,
        )
        self._server: asyncio.AbstractServer | None = None
        self._started = time.monotonic()
        self.requests = 0
        self.flight = FlightRecorder(capacity=self.config.flight_capacity).install()
        self.slo = SLOTracker(self.config.slo)
        if self.config.slo:
            self.slo.register_metrics(obs_metrics.REGISTRY)

    # -- the blocking batch runner (executor thread) -------------------------

    def _run_batch(self, configs: list[SimConfig]) -> Sequence[SimulationResult]:
        """Run one fused batch through the pool runtime.

        ``run_simulations`` sweeps the shared cache in one
        :meth:`~repro.simulation.pool.ResultCache.get_many` pass, fuses
        each chunk's fast-engine configs into a single
        ``simulate_batch`` call, and stores new results with
        :meth:`~repro.simulation.pool.ResultCache.put_many`.
        """
        return run_simulations(configs, jobs=self.config.jobs, cache=self.cache)

    # -- request execution ----------------------------------------------------

    async def _simulate(self, cfg: SimConfig) -> SimulationResult:
        if not self.config.coalesce:
            return await self.batcher.submit(cfg)
        return await self.coalescer.get(
            config_key(cfg), lambda: self.batcher.submit(cfg)
        )

    async def _handle_simulate(self, body: Any) -> dict:
        cfg = config_from_json(body)
        result = await self._simulate(cfg)
        return {"result": result_to_json(result)}

    async def _handle_sweep(self, body: Any) -> dict:
        rows, n_cells, n_seeds = sweep_rows_from_json(body)
        detail = bool(body.get("detail", False)) if isinstance(body, dict) else False
        results = await asyncio.gather(*(self._simulate(cfg) for cfg in rows))
        cells = []
        for c in range(n_cells):
            per_seed = results[c * n_seeds : (c + 1) * n_seeds]
            effs = [r.efficiency for r in per_seed]
            mean = sum(effs) / len(effs)
            if len(effs) > 1:
                var = sum((e - mean) ** 2 for e in effs) / (len(effs) - 1)
                ci = _t95(len(effs) - 1) * (var**0.5) / (len(effs) ** 0.5)
            else:
                ci = float("inf")
            cell: dict[str, Any] = {
                "mean_efficiency": mean,
                "ci95": ci,
                "efficiencies": effs,
            }
            if detail:
                cell["results"] = [result_to_json(r) for r in per_seed]
            cells.append(cell)
        return {"cells": cells, "n_cells": n_cells, "n_seeds": n_seeds}

    async def _handle_optimize(self, body: Any) -> dict:
        if not isinstance(body, dict):
            raise ProtocolError("optimize request must be a JSON object")
        unknown = sorted(set(body) - {"params", "compression", "rerun_accounting"})
        if unknown:
            raise ProtocolError(f"unknown optimize key(s) {unknown}")
        params = params_from_json(body.get("params"))
        compression = compression_from_json(body.get("compression"))
        accounting = body.get("rerun_accounting", "paper")
        if accounting not in ("paper", "staleness"):
            raise ProtocolError(
                f"rerun_accounting must be 'paper' or 'staleness': {accounting!r}"
            )
        key = "optimize:" + canonical_dumps(
            {
                "params": dataclasses.asdict(params),
                "compression": dataclasses.asdict(compression),
                "rerun_accounting": accounting,
            }
        ).decode()

        async def _start() -> dict:
            loop = asyncio.get_running_loop()
            ctx = obs_trace.current_context()
            rec = req_timing.job_record()
            t0 = loop.time()

            def _blocking():
                # The memoized model (core.optimizer._MEMO) is process-wide:
                # every request warms it for every later request.  The
                # request context is handed across the executor boundary
                # explicitly (run_in_executor does not copy contextvars).
                with obs_trace.use_context(ctx):
                    with obs_trace.span("optimizer", "compute", label=accounting):
                        return optimal_host(params, compression, accounting)

            result = await loop.run_in_executor(None, _blocking)
            if rec is not None:
                t1 = loop.time()
                rec["compute"] = t1 - t0
                rec["resolved"] = t1
            return model_result_to_json(result)

        if not self.config.coalesce:
            payload = await _start()
        else:
            payload = await self.coalescer.get(key, _start)
        return {"optimal": payload}

    def _latency_payload(self) -> dict:
        """p50/p90/p99 of the request-latency histogram, per endpoint."""
        out: dict[str, dict[str, float]] = {}
        for labels, cell in _REQUEST_SECONDS.samples():
            ep = labels.get("endpoint")
            if ep is None or not cell["count"]:
                continue
            out[ep] = {
                "count": cell["count"],
                "p50": _REQUEST_SECONDS.quantile(0.50, endpoint=ep),
                "p90": _REQUEST_SECONDS.quantile(0.90, endpoint=ep),
                "p99": _REQUEST_SECONDS.quantile(0.99, endpoint=ep),
            }
        return out

    def _stats_payload(self) -> dict:
        stats = self.batcher.stats
        return {
            "uptime_seconds": time.monotonic() - self._started,
            "requests": self.requests,
            "latency": self._latency_payload(),
            "slo": self.slo.snapshot(),
            "coalesce": {
                "primary": self.coalescer.primary,
                "coalesced": self.coalescer.coalesced,
                "inflight": len(self.coalescer),
            },
            "batch": {
                "submitted": stats.submitted,
                "batches": dict(stats.batches),
                "batched_jobs": dict(stats.batched_jobs),
                "mean_fast_batch": stats.mean_batch_size("fast"),
                "max_batch_seen": stats.max_batch_seen,
                "cache_hits": stats.cache_hits,
                "queue_depth": self.batcher.queue_depth,
            },
            "cache": {
                "enabled": self.cache is not None,
                "hits": getattr(self.cache, "hits", 0),
                "misses": getattr(self.cache, "misses", 0),
            },
        }

    # -- HTTP framing ----------------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """One request off the wire, or ``None`` on a clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _HttpError(400, "truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(431, "request head too large") from exc
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(431, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header: {line!r}")
            headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
            if length < 0 or length > _MAX_BODY_BYTES:
                raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    @staticmethod
    def _response(
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        keep_alive: bool = True,
        trace_id: str | None = None,
    ) -> bytes:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            413: "Payload Too Large",
            431: "Request Header Fields Too Large",
            500: "Internal Server Error",
        }.get(status, "Unknown")
        trace_hdr = f"X-Repro-Trace: {trace_id}\r\n" if trace_id else ""
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{trace_hdr}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    def _handle_debug(self, path: str, query: str) -> tuple[int, bytes, str]:
        """The flight-recorder endpoints (always on, allocation-bounded)."""
        if path == "/debug/requests":
            params = parse_qs(query)
            try:
                n = int(params.get("n", ["20"])[0])
            except ValueError:
                return 400, canonical_dumps({"error": "n must be an integer"}), "application/json"
            slowest = params.get("sort", [""])[0] == "slowest"
            return (
                200,
                canonical_dumps(
                    {"requests": self.flight.requests(n, slowest=slowest)}
                ),
                "application/json",
            )
        if path.startswith("/debug/trace/"):
            trace_id = path[len("/debug/trace/") :]
            found = self.flight.lookup(trace_id)
            if found is None:
                return (
                    404,
                    canonical_dumps({"error": f"no retained trace {trace_id!r}"}),
                    "application/json",
                )
            return 200, canonical_dumps(found), "application/json"
        return 404, canonical_dumps({"error": f"no such endpoint: {path}"}), "application/json"

    async def _dispatch(
        self, method: str, path: str, body: bytes, want_timing: bool = False
    ) -> tuple[int, bytes, str, dict[str, float] | None]:
        """Route one request; returns (status, body, content type, timing).

        The fourth element is the six-stage ``server_timing`` breakdown
        for successful ``/v1/*`` requests (always handed to the flight
        recorder; embedded in the response only when the client asked
        via ``X-Repro-Timing``), ``None`` otherwise.
        """
        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                return 405, canonical_dumps({"error": "GET only"}), "application/json", None
            return 200, canonical_dumps({"status": "ok"}), "application/json", None
        if path == "/metrics":
            if method != "GET":
                return 405, canonical_dumps({"error": "GET only"}), "application/json", None
            text = obs_metrics.REGISTRY.render_prometheus()
            return 200, text.encode("utf-8"), "text/plain; version=0.0.4", None
        if path == "/stats":
            if method != "GET":
                return 405, canonical_dumps({"error": "GET only"}), "application/json", None
            return 200, canonical_dumps(self._stats_payload()), "application/json", None
        if path.startswith("/debug/"):
            if method != "GET":
                return 405, canonical_dumps({"error": "GET only"}), "application/json", None
            return (*self._handle_debug(path, query), None)

        handlers = {
            "/v1/simulate": self._handle_simulate,
            "/v1/sweep": self._handle_sweep,
            "/v1/optimize": self._handle_optimize,
        }
        handler = handlers.get(path)
        if handler is None:
            return 404, canonical_dumps({"error": f"no such endpoint: {path}"}), "application/json", None
        if method != "POST":
            return 405, canonical_dumps({"error": "POST only"}), "application/json", None
        with req_timing.activate() as rt:
            p0 = time.monotonic()
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, canonical_dumps({"error": f"invalid JSON body: {exc}"}), "application/json", None
            p1 = time.monotonic()
            try:
                out = await handler(payload)
            except ProtocolError as exc:
                return 400, canonical_dumps({"error": str(exc)}), "application/json", None
            except Exception as exc:  # computation failure must not kill the server
                return 500, canonical_dumps({"error": f"{type(exc).__name__}: {exc}"}), "application/json", None
            p2 = time.monotonic()
            rendered = canonical_dumps(out)
            p3 = time.monotonic()
            stages = rt.finalize(parse=p1 - p0, handle=p2 - p1, serialize=p3 - p2)
        if want_timing:
            # Opt-in only: the default response must stay byte-identical
            # to serial evaluation (the service's determinism contract).
            out["server_timing"] = stages
            rendered = canonical_dumps(out)
        return 200, rendered, "application/json", stages

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    req = await self._read_request(reader)
                except _HttpError as exc:
                    writer.write(
                        self._response(
                            exc.status,
                            canonical_dumps({"error": exc.message}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if req is None:
                    return
                method, path, headers, body = req
                route = path.partition("?")[0]
                endpoint = route if route.startswith("/v1/") or route in (
                    "/metrics", "/healthz", "/stats"
                ) else "other"
                # Request ingress: honor the client's X-Repro-Trace id or
                # mint one; every span below joins this request's tree.
                trace_id = _clean_trace_id(headers.get("x-repro-trace")) or obs_trace.new_trace_id()
                want_timing = "x-repro-timing" in headers
                self.flight.begin(trace_id, method, route)
                t0 = time.monotonic()
                with obs_trace.span(
                    "server",
                    "request",
                    label=route,
                    ctx=obs_trace.TraceContext(trace_id),
                    method=method,
                ) as sp:
                    status, payload, ctype, stages = await self._dispatch(
                        method, path, body, want_timing
                    )
                    sp.set(status=status)
                wall = time.monotonic() - t0
                _REQUEST_SECONDS.observe(
                    wall,
                    exemplar=trace_id if obs_trace.enabled() else None,
                    endpoint=endpoint,
                )
                _REQUESTS.inc(endpoint=endpoint, status=str(status))
                if route.startswith("/v1/"):
                    self.slo.record(route[len("/v1/") :], wall, ok=status < 500)
                self.flight.finish(trace_id, status, wall, server_timing=stages)
                self.requests += 1
                keep = headers.get("connection", "keep-alive").lower() != "close"
                writer.write(
                    self._response(
                        status, payload, content_type=ctype, keep_alive=keep,
                        trace_id=trace_id,
                    )
                )
                await writer.drain()
                if not keep:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown while the connection idled
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=_MAX_HEADER_BYTES,
        )

    async def stop(self) -> None:
        """Stop accepting, close the batcher and release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.batcher.close()
        self.flight.uninstall()

    async def serve_forever(self) -> None:
        """Run until cancelled (KeyboardInterrupt-friendly)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()


class _HttpError(Exception):
    """Framing-level failure with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def serve(config: ServiceConfig | None = None) -> None:
    """Blocking entry point: run a server until interrupted."""
    server = ServiceServer(config)

    async def _main() -> None:
        await server.start()
        host, port = server.config.host, server.port
        print(f"repro service listening on http://{host}:{port}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """A server on its own thread + event loop (tests and benchmarks).

    Use as a context manager::

        with BackgroundServer(ServiceConfig(port=0)) as srv:
            client = ServiceClient("127.0.0.1", srv.port)
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.server = ServiceServer(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self.port: int = -1

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10) or self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}")
        return self

    def _run(self) -> None:
        async def _main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.server.start()
                self.port = self.server.port
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            try:
                await self.server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.server.stop()

        asyncio.run(_main())

    def __exit__(self, *exc_info: object) -> None:
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(self._cancel_all)
            thread.join(timeout=10)

    def _cancel_all(self) -> None:
        assert self._loop is not None
        for task in asyncio.all_tasks(self._loop):
            task.cancel()
