"""Asyncio HTTP/JSON server for the capacity-planning service.

Hand-rolled HTTP/1.1 over ``asyncio.start_server`` — no framework, no
third-party deps — with persistent connections (keep-alive matters: the
closed-loop load generator reuses sockets, and per-request TCP setup
would dominate at millisecond service times).

Endpoints (see ``docs/SERVICE.md`` for the full schema):

* ``POST /v1/simulate`` — one scenario; coalesced with identical
  in-flight configs, micro-batched with compatible concurrent ones.
* ``POST /v1/sweep`` — a list of cells x a seed axis; every row rides
  the same coalescer/batcher, so concurrent sweeps fuse with each other
  and with single simulates.
* ``POST /v1/optimize`` — optimal host ratio via the process-wide
  memoized model (``core.optimizer._MEMO``), coalesced by scenario.
* ``GET /metrics`` — the process-global metrics registry in Prometheus
  text format; ``GET /healthz`` — liveness; ``GET /stats`` — service
  counters as JSON (what the benchmark reads).

Shared state is the point: one :class:`~repro.simulation.pool.ResultCache`,
one optimizer memo, one metrics registry across every client.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, AsyncIterator, Sequence
from urllib.parse import parse_qs

from ..core.optimizer import optimal_host
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.flight import FlightRecorder
from ..obs.slo import SLOTarget, SLOTracker
from ..simulation.batch import _t95
from ..simulation.pool import ResultCache, config_key, run_simulations
from ..simulation.simulator import SimConfig
from ..simulation.stats import SimulationResult
from . import timing as req_timing
from .batcher import Batcher, DeadlineExceeded, Overloaded
from .coalescer import Coalescer
from .protocol import (
    ProtocolError,
    QoS,
    canonical_dumps,
    compression_from_json,
    config_from_json,
    model_result_to_json,
    params_from_json,
    qos_from_json,
    result_to_json,
    sweep_rows_from_json,
)

__all__ = ["BackgroundServer", "ServiceConfig", "ServiceServer", "serve"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024

_TRACE_ID_CHARS = frozenset("0123456789abcdefABCDEF-")


def _clean_trace_id(raw: str | None) -> str | None:
    """A client-supplied ``X-Repro-Trace`` id, sanitized: hex digits and
    dashes only, bounded length (it lands in JSONL traces and response
    headers, so arbitrary bytes are rejected rather than escaped)."""
    if not raw:
        return None
    raw = raw.strip()
    if 1 <= len(raw) <= 64 and set(raw) <= _TRACE_ID_CHARS:
        return raw.lower()
    return None

_REQUESTS = obs_metrics.REGISTRY.counter(
    "service_requests_total", "HTTP requests served, by endpoint and status"
)
_REQUEST_SECONDS = obs_metrics.REGISTRY.histogram(
    "service_request_seconds", "request wall time, by endpoint"
)


@dataclass(frozen=True)
class ServiceConfig:
    """Server tuning knobs.

    Attributes
    ----------
    host, port:
        Bind address; port 0 picks a free port (read it back from
        :attr:`ServiceServer.port`).
    jobs:
        Worker processes per dispatched batch
        (:func:`~repro.simulation.pool.run_simulations` semantics:
        1 = inline in the dispatch thread, ``None`` = one per core).
    cache:
        Shared on-disk result cache; ``None`` disables it.
    batch_window:
        Bounded micro-batching delay, seconds.
    max_batch:
        Fusion cap per dispatched batch; 1 disables fusion (the
        benchmark's naive baseline).
    max_inflight:
        Concurrent batch dispatches (executor threads).
    coalesce:
        Deduplicate identical in-flight configs.  Off, every duplicate
        computes independently (the naive baseline).
    slo:
        Latency objectives (:func:`repro.obs.slo.parse_slo` specs like
        ``simulate=50ms:0.99``); burn rates surface in ``/stats`` and
        ``/metrics``.
    flight_capacity:
        Requests retained by the always-on flight recorder
        (``/debug/requests``, ``/debug/trace/<id>``).
    queue_budget:
        Admission-control budget in seconds (``None`` = never shed):
        once the batcher's estimated queue drain time exceeds it, new
        simulate/sweep work is answered 503 + ``Retry-After``.
    aging:
        Seconds of queueing that promote a job one priority class
        (starvation control for the low classes).
    reuse_port:
        Bind with ``SO_REUSEPORT`` so several worker processes can
        share one port (the kernel load-balances accepts).  Set by the
        prefork supervisor; harmless but pointless for one process.
    worker_index:
        This process's index under a prefork supervisor (``None`` =
        standalone).  Stamped onto every exported metric as the
        ``worker`` label and into ``/stats``.
    stats_dir:
        Directory where prefork workers publish their stats snapshots
        (one JSON file per worker, atomic replace).  Any worker
        answering ``GET /stats`` merges every sibling's snapshot into a
        ``workers`` list, so one scrape sees the whole group no matter
        which worker the kernel picked.
    """

    host: str = "127.0.0.1"
    port: int = 8077
    jobs: int | None = 1
    cache: ResultCache | None = None
    batch_window: float = 0.002
    max_batch: int = 256
    max_inflight: int = 2
    coalesce: bool = True
    slo: tuple[SLOTarget, ...] = ()
    flight_capacity: int = 256
    queue_budget: float | None = None
    aging: float = 1.0
    reuse_port: bool = False
    worker_index: int | None = None
    stats_dir: str | None = None


@dataclass
class _StreamBody:
    """A chunked NDJSON response body (the streaming sweep)."""

    gen: AsyncIterator[bytes]
    content_type: str = "application/x-ndjson"


class ServiceServer:
    """One service instance: shared state + the asyncio protocol loop."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = self.config.cache
        self.coalescer = Coalescer()
        self.batcher = Batcher(
            self._run_batch,
            window=self.config.batch_window,
            max_batch=self.config.max_batch,
            max_inflight=self.config.max_inflight,
            cache=self.cache,
            queue_budget=self.config.queue_budget,
            aging=self.config.aging,
        )
        self._server: asyncio.AbstractServer | None = None
        self._started = time.monotonic()
        self.requests = 0
        #: In-flight HTTP requests (graceful drain waits on this).
        self._inflight_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._writers: set[asyncio.StreamWriter] = set()
        self._stats_task: asyncio.Task | None = None
        self.flight = FlightRecorder(capacity=self.config.flight_capacity).install()
        self.slo = SLOTracker(self.config.slo)
        if self.config.slo:
            self.slo.register_metrics(obs_metrics.REGISTRY)
        if self.config.worker_index is not None:
            # Every metric this worker exports carries its identity.
            obs_metrics.REGISTRY.set_constant_labels(
                worker=str(self.config.worker_index)
            )

    # -- the blocking batch runner (executor thread) -------------------------

    def _run_batch(self, configs: list[SimConfig]) -> Sequence[SimulationResult]:
        """Run one fused batch through the pool runtime.

        ``run_simulations`` sweeps the shared cache in one
        :meth:`~repro.simulation.pool.ResultCache.get_many` pass, fuses
        each chunk's fast-engine configs into a single
        ``simulate_batch`` call, and stores new results with
        :meth:`~repro.simulation.pool.ResultCache.put_many`.
        """
        return run_simulations(configs, jobs=self.config.jobs, cache=self.cache)

    # -- request execution ----------------------------------------------------

    async def _simulate(
        self, cfg: SimConfig, qos: QoS | None = None
    ) -> SimulationResult:
        # A coalesced duplicate inherits the primary's QoS: it attaches
        # to work already admitted and scheduled, so its own deadline or
        # priority cannot (and need not) reshape that computation.
        if not self.config.coalesce:
            return await self.batcher.submit(cfg, qos)
        return await self.coalescer.get(
            config_key(cfg), lambda: self.batcher.submit(cfg, qos)
        )

    async def _handle_simulate(self, body: Any) -> dict:
        qos, body = qos_from_json(body)
        cfg = config_from_json(body)
        result = await self._simulate(cfg, qos)
        return {"result": result_to_json(result)}

    @staticmethod
    def _cell_payload(per_seed: Sequence[SimulationResult], detail: bool) -> dict:
        """One sweep cell's aggregates — shared by the buffered and the
        streaming path, so a streamed cell is byte-identical to its
        buffered counterpart by construction."""
        effs = [r.efficiency for r in per_seed]
        mean = sum(effs) / len(effs)
        if len(effs) > 1:
            var = sum((e - mean) ** 2 for e in effs) / (len(effs) - 1)
            ci = _t95(len(effs) - 1) * (var**0.5) / (len(effs) ** 0.5)
        else:
            ci = float("inf")
        cell: dict[str, Any] = {
            "mean_efficiency": mean,
            "ci95": ci,
            "efficiencies": effs,
        }
        if detail:
            cell["results"] = [result_to_json(r) for r in per_seed]
        return cell

    async def _handle_sweep(self, body: Any) -> "dict | _StreamBody":
        qos, body = qos_from_json(body)
        rows, n_cells, n_seeds = sweep_rows_from_json(body)
        detail = bool(body.get("detail", False))
        if bool(body.get("stream", False)):
            return _StreamBody(
                self._sweep_stream(rows, n_cells, n_seeds, detail, qos)
            )
        results = await asyncio.gather(*(self._simulate(cfg, qos) for cfg in rows))
        cells = [
            self._cell_payload(results[c * n_seeds : (c + 1) * n_seeds], detail)
            for c in range(n_cells)
        ]
        return {"cells": cells, "n_cells": n_cells, "n_seeds": n_seeds}

    async def _sweep_stream(
        self,
        rows: list[SimConfig],
        n_cells: int,
        n_seeds: int,
        detail: bool,
        qos: QoS | None,
    ) -> AsyncIterator[bytes]:
        """NDJSON sweep body: a header line, then one line per cell.

        Every row is submitted up front (fusion across the whole grid is
        the point), but cells are rendered and released **in order as
        they complete** — the response never holds the whole grid's
        rendered JSON, and time-to-first-row is the first cell group's
        latency, not the grid's.  Each cell line is rendered by
        ``canonical_dumps`` exactly like the buffered path, so the
        concatenation of streamed rows is byte-identical to the buffered
        response's ``cells`` (the acceptance test checks this at the
        socket level).
        """
        tasks: list[asyncio.Task | None] = [
            asyncio.ensure_future(self._simulate(cfg, qos)) for cfg in rows
        ]
        for t in tasks:
            # A cell that errors aborts the stream before later cells are
            # awaited; consume their exceptions so nothing warns.
            t.add_done_callback(lambda t: t.cancelled() or t.exception())
        try:
            yield canonical_dumps({"n_cells": n_cells, "n_seeds": n_seeds}) + b"\n"
            for c in range(n_cells):
                sl = slice(c * n_seeds, (c + 1) * n_seeds)
                per_seed = await asyncio.gather(*tasks[sl])
                # Release each cell's rows as soon as it is rendered:
                # peak memory is in-flight cells, not the whole grid.
                tasks[sl] = [None] * n_seeds
                yield canonical_dumps(self._cell_payload(per_seed, detail)) + b"\n"
        finally:
            for t in tasks:
                if t is not None:
                    t.cancel()

    async def _handle_optimize(self, body: Any) -> dict:
        if not isinstance(body, dict):
            raise ProtocolError("optimize request must be a JSON object")
        unknown = sorted(set(body) - {"params", "compression", "rerun_accounting"})
        if unknown:
            raise ProtocolError(f"unknown optimize key(s) {unknown}")
        params = params_from_json(body.get("params"))
        compression = compression_from_json(body.get("compression"))
        accounting = body.get("rerun_accounting", "paper")
        if accounting not in ("paper", "staleness"):
            raise ProtocolError(
                f"rerun_accounting must be 'paper' or 'staleness': {accounting!r}"
            )
        key = "optimize:" + canonical_dumps(
            {
                "params": dataclasses.asdict(params),
                "compression": dataclasses.asdict(compression),
                "rerun_accounting": accounting,
            }
        ).decode()

        async def _start() -> dict:
            loop = asyncio.get_running_loop()
            ctx = obs_trace.current_context()
            rec = req_timing.job_record()
            t0 = loop.time()

            def _blocking():
                # The memoized model (core.optimizer._MEMO) is process-wide:
                # every request warms it for every later request.  The
                # request context is handed across the executor boundary
                # explicitly (run_in_executor does not copy contextvars).
                with obs_trace.use_context(ctx):
                    with obs_trace.span("optimizer", "compute", label=accounting):
                        return optimal_host(params, compression, accounting)

            result = await loop.run_in_executor(None, _blocking)
            if rec is not None:
                t1 = loop.time()
                rec["compute"] = t1 - t0
                rec["resolved"] = t1
            return model_result_to_json(result)

        if not self.config.coalesce:
            payload = await _start()
        else:
            payload = await self.coalescer.get(key, _start)
        return {"optimal": payload}

    def _latency_payload(self) -> dict:
        """p50/p90/p99 of the request-latency histogram, per endpoint."""
        out: dict[str, dict[str, float]] = {}
        for labels, cell in _REQUEST_SECONDS.samples():
            ep = labels.get("endpoint")
            if ep is None or not cell["count"]:
                continue
            out[ep] = {
                "count": cell["count"],
                "p50": _REQUEST_SECONDS.quantile(0.50, endpoint=ep),
                "p90": _REQUEST_SECONDS.quantile(0.90, endpoint=ep),
                "p99": _REQUEST_SECONDS.quantile(0.99, endpoint=ep),
            }
        return out

    def _own_stats(self) -> dict:
        stats = self.batcher.stats
        out = {
            "uptime_seconds": time.monotonic() - self._started,
            "requests": self.requests,
            "latency": self._latency_payload(),
            "slo": self.slo.snapshot(),
            "coalesce": {
                "primary": self.coalescer.primary,
                "coalesced": self.coalescer.coalesced,
                "inflight": len(self.coalescer),
            },
            "batch": {
                "submitted": stats.submitted,
                "batches": dict(stats.batches),
                "batched_jobs": dict(stats.batched_jobs),
                "mean_fast_batch": stats.mean_batch_size("fast"),
                "max_batch_seen": stats.max_batch_seen,
                "cache_hits": stats.cache_hits,
                "queue_depth": self.batcher.queue_depth,
                "shed": stats.shed,
                "expired": stats.expired,
            },
            "cache": {
                "enabled": self.cache is not None,
                "hits": getattr(self.cache, "hits", 0),
                "misses": getattr(self.cache, "misses", 0),
            },
        }
        if self.config.worker_index is not None:
            out["worker"] = self.config.worker_index
            out["pid"] = os.getpid()
        return out

    def _publish_stats(self) -> dict:
        """Atomically publish this worker's snapshot to ``stats_dir``."""
        own = self._own_stats()
        if self.config.stats_dir is not None and self.config.worker_index is not None:
            d = Path(self.config.stats_dir)
            name = f"worker-{self.config.worker_index}.json"
            tmp = d / f".{name}.{os.getpid()}.tmp"
            try:
                tmp.write_text(json.dumps(own))
                tmp.replace(d / name)
            except OSError:
                pass  # stats publication must never take a worker down
        return own

    def _stats_payload(self) -> dict:
        """This process's stats, plus — under a prefork supervisor —
        every sibling's last published snapshot as a ``workers`` list.

        SO_REUSEPORT means a scrape lands on whichever worker the kernel
        picks; merging the published files makes any worker's answer
        describe the whole group."""
        out = self._publish_stats()
        if self.config.stats_dir is None:
            return out
        workers = []
        try:
            files = sorted(Path(self.config.stats_dir).glob("worker-*.json"))
        except OSError:
            files = []
        for f in files:
            try:
                workers.append(json.loads(f.read_text()))
            except (OSError, json.JSONDecodeError):
                continue  # sibling mid-replace or gone; skip this scrape
        workers.sort(key=lambda w: w.get("worker", -1))
        out["workers"] = workers
        return out

    # -- HTTP framing ----------------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """One request off the wire, or ``None`` on a clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _HttpError(400, "truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(431, "request head too large") from exc
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(431, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header: {line!r}")
            headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
            if length < 0 or length > _MAX_BODY_BYTES:
                raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    _REASONS = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        413: "Payload Too Large",
        431: "Request Header Fields Too Large",
        500: "Internal Server Error",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }

    @classmethod
    def _head(
        cls,
        status: int,
        framing: str,
        *,
        content_type: str,
        keep_alive: bool,
        trace_id: str | None,
        extra: dict[str, str] | None = None,
    ) -> bytes:
        trace_hdr = f"X-Repro-Trace: {trace_id}\r\n" if trace_id else ""
        extra_hdr = "".join(f"{k}: {v}\r\n" for k, v in (extra or {}).items())
        return (
            f"HTTP/1.1 {status} {cls._REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"{framing}"
            f"{trace_hdr}"
            f"{extra_hdr}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")

    @classmethod
    def _response(
        cls,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        keep_alive: bool = True,
        trace_id: str | None = None,
        extra: dict[str, str] | None = None,
    ) -> bytes:
        head = cls._head(
            status,
            f"Content-Length: {len(body)}\r\n",
            content_type=content_type,
            keep_alive=keep_alive,
            trace_id=trace_id,
            extra=extra,
        )
        return head + body

    @staticmethod
    def _chunk(data: bytes) -> bytes:
        """One HTTP/1.1 chunked-transfer frame."""
        return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"

    def _handle_debug(self, path: str, query: str) -> tuple[int, bytes, str]:
        """The flight-recorder endpoints (always on, allocation-bounded)."""
        if path == "/debug/requests":
            params = parse_qs(query)
            try:
                n = int(params.get("n", ["20"])[0])
            except ValueError:
                return 400, canonical_dumps({"error": "n must be an integer"}), "application/json"
            slowest = params.get("sort", [""])[0] == "slowest"
            return (
                200,
                canonical_dumps(
                    {"requests": self.flight.requests(n, slowest=slowest)}
                ),
                "application/json",
            )
        if path.startswith("/debug/trace/"):
            trace_id = path[len("/debug/trace/") :]
            found = self.flight.lookup(trace_id)
            if found is None:
                return (
                    404,
                    canonical_dumps({"error": f"no retained trace {trace_id!r}"}),
                    "application/json",
                )
            return 200, canonical_dumps(found), "application/json"
        return 404, canonical_dumps({"error": f"no such endpoint: {path}"}), "application/json"

    async def _dispatch(
        self, method: str, path: str, body: bytes, want_timing: bool = False
    ) -> tuple[int, "bytes | _StreamBody", str, dict[str, float] | None, dict[str, str]]:
        """Route one request.

        Returns ``(status, body, content type, timing, extra headers)``.
        ``body`` is rendered bytes, or a :class:`_StreamBody` whose
        NDJSON lines the connection loop writes chunked.  The timing
        element is the six-stage ``server_timing`` breakdown for
        successful ``/v1/*`` requests (always handed to the flight
        recorder; embedded in the response only when the client asked
        via ``X-Repro-Timing``), ``None`` otherwise.  Extra headers
        carry ``Retry-After`` on admission-control 503s.
        """
        def _err(status: int, message: str) -> tuple:
            return status, canonical_dumps({"error": message}), "application/json", None, {}

        path, _, query = path.partition("?")
        if path == "/healthz":
            if method != "GET":
                return _err(405, "GET only")
            return 200, canonical_dumps({"status": "ok"}), "application/json", None, {}
        if path == "/metrics":
            if method != "GET":
                return _err(405, "GET only")
            text = obs_metrics.REGISTRY.render_prometheus()
            return 200, text.encode("utf-8"), "text/plain; version=0.0.4", None, {}
        if path == "/stats":
            if method != "GET":
                return _err(405, "GET only")
            return 200, canonical_dumps(self._stats_payload()), "application/json", None, {}
        if path.startswith("/debug/"):
            if method != "GET":
                return _err(405, "GET only")
            return (*self._handle_debug(path, query), None, {})

        handlers = {
            "/v1/simulate": self._handle_simulate,
            "/v1/sweep": self._handle_sweep,
            "/v1/optimize": self._handle_optimize,
        }
        handler = handlers.get(path)
        if handler is None:
            return _err(404, f"no such endpoint: {path}")
        if method != "POST":
            return _err(405, "POST only")
        route = path[len("/v1/") :]
        with req_timing.activate() as rt:
            p0 = time.monotonic()
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return _err(400, f"invalid JSON body: {exc}")
            p1 = time.monotonic()
            try:
                out = await handler(payload)
            except ProtocolError as exc:
                return _err(400, str(exc))
            except DeadlineExceeded as exc:
                # The fast 504: the scheduler failed the job before it
                # ever reached the runner.
                self.slo.note(route, "expired")
                return 504, canonical_dumps({"error": str(exc)}), "application/json", None, {}
            except Overloaded as exc:
                self.slo.note(route, "shed")
                return (
                    503,
                    canonical_dumps({"error": str(exc)}),
                    "application/json",
                    None,
                    {"Retry-After": str(int(exc.retry_after))},
                )
            except Exception as exc:  # computation failure must not kill the server
                return _err(500, f"{type(exc).__name__}: {exc}")
            p2 = time.monotonic()
            if isinstance(out, _StreamBody):
                # Serialization happens per line on the wire; the handler
                # segment here only covers submitting the rows.
                stages = rt.finalize(parse=p1 - p0, handle=p2 - p1, serialize=0.0)
                return 200, out, out.content_type, stages, {}
            rendered = canonical_dumps(out)
            p3 = time.monotonic()
            stages = rt.finalize(parse=p1 - p0, handle=p2 - p1, serialize=p3 - p2)
        if want_timing:
            # Opt-in only: the default response must stay byte-identical
            # to serial evaluation (the service's determinism contract).
            out["server_timing"] = stages
            rendered = canonical_dumps(out)
        return 200, rendered, "application/json", stages, {}

    async def _write_stream(
        self,
        writer: asyncio.StreamWriter,
        stream: _StreamBody,
        *,
        keep_alive: bool,
        trace_id: str | None,
    ) -> tuple[int, bool]:
        """Write one chunked NDJSON body; returns (status, keep alive).

        Each line is flushed as its cell completes — a slow consumer's
        backpressure (``drain``) bounds server-side buffering.  A
        mid-stream failure cannot rewrite the already-sent 200 head, so
        it becomes a final ``{"error": ...}`` line followed by a
        connection close (the truncation is the client's signal).
        """
        writer.write(
            self._head(
                200,
                "Transfer-Encoding: chunked\r\n",
                content_type=stream.content_type,
                keep_alive=keep_alive,
                trace_id=trace_id,
            )
        )
        status, keep = 200, keep_alive
        try:
            async for line in stream.gen:
                writer.write(self._chunk(line))
                await writer.drain()
        except Exception as exc:
            status, keep = 500, False
            if isinstance(exc, DeadlineExceeded):
                status = 504
            elif isinstance(exc, Overloaded):
                status = 503
            err = {"error": f"{type(exc).__name__}: {exc}", "status": status}
            writer.write(self._chunk(canonical_dumps(err) + b"\n"))
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return status, keep

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    req = await self._read_request(reader)
                except _HttpError as exc:
                    writer.write(
                        self._response(
                            exc.status,
                            canonical_dumps({"error": exc.message}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if req is None:
                    return
                self._inflight_requests += 1
                self._idle.clear()
                try:
                    method, path, headers, body = req
                    route = path.partition("?")[0]
                    endpoint = route if route.startswith("/v1/") or route in (
                        "/metrics", "/healthz", "/stats"
                    ) else "other"
                    # Request ingress: honor the client's X-Repro-Trace id or
                    # mint one; every span below joins this request's tree.
                    trace_id = _clean_trace_id(headers.get("x-repro-trace")) or obs_trace.new_trace_id()
                    want_timing = "x-repro-timing" in headers
                    self.flight.begin(trace_id, method, route)
                    keep = headers.get("connection", "keep-alive").lower() != "close"
                    if self._draining:
                        # Finish what is in flight, invite no more.
                        keep = False
                    t0 = time.monotonic()
                    with obs_trace.span(
                        "server",
                        "request",
                        label=route,
                        ctx=obs_trace.TraceContext(trace_id),
                        method=method,
                    ) as sp:
                        status, payload, ctype, stages, extra = await self._dispatch(
                            method, path, body, want_timing
                        )
                        if isinstance(payload, _StreamBody):
                            # The streamed request's wall time includes the
                            # full body: the last cell is part of serving it.
                            status, keep = await self._write_stream(
                                writer, payload, keep_alive=keep, trace_id=trace_id
                            )
                        sp.set(status=status)
                    wall = time.monotonic() - t0
                    _REQUEST_SECONDS.observe(
                        wall,
                        exemplar=trace_id if obs_trace.enabled() else None,
                        endpoint=endpoint,
                    )
                    _REQUESTS.inc(endpoint=endpoint, status=str(status))
                    if route.startswith("/v1/"):
                        self.slo.record(route[len("/v1/") :], wall, ok=status < 500)
                    self.flight.finish(trace_id, status, wall, server_timing=stages)
                    self.requests += 1
                    if not isinstance(payload, _StreamBody):
                        writer.write(
                            self._response(
                                status, payload, content_type=ctype, keep_alive=keep,
                                trace_id=trace_id, extra=extra,
                            )
                        )
                        await writer.drain()
                finally:
                    self._inflight_requests -= 1
                    if self._inflight_requests == 0:
                        self._idle.set()
                if not keep:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutdown while the connection idled
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    # -- lifecycle -------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self, sock: "socket.socket | None" = None) -> None:
        """Bind and start accepting connections (non-blocking).

        ``sock`` lets a prefork supervisor hand every worker the *same*
        already-bound listener (the fallback when ``SO_REUSEPORT`` is
        unavailable); with ``reuse_port`` each worker binds its own
        socket to the shared port and the kernel load-balances accepts.
        """
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_conn, sock=sock, limit=_MAX_HEADER_BYTES
            )
        else:
            kwargs: dict[str, Any] = {}
            if self.config.reuse_port:
                kwargs["reuse_port"] = True
            self._server = await asyncio.start_server(
                self._handle_conn,
                self.config.host,
                self.config.port,
                limit=_MAX_HEADER_BYTES,
                **kwargs,
            )
        if self.config.stats_dir is not None and self.config.worker_index is not None:
            self._stats_task = asyncio.get_running_loop().create_task(
                self._stats_publisher()
            )

    async def _stats_publisher(self) -> None:
        """Keep this worker's published snapshot fresh for siblings.

        A scrape merges *published* files, so a worker the kernel never
        routes ``GET /stats`` to must still publish periodically."""
        try:
            while True:
                self._publish_stats()
                await asyncio.sleep(0.5)
        except asyncio.CancelledError:
            self._publish_stats()  # one last snapshot on shutdown
            raise

    async def stop(self) -> None:
        """Stop accepting, close the batcher and release the socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._stats_task is not None:
            self._stats_task.cancel()
            try:
                await self._stats_task
            except asyncio.CancelledError:
                pass
            self._stats_task = None
        self.batcher.close()
        self.flight.uninstall()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, exit.

        New connections are refused immediately; requests already being
        served complete and are answered (their connections then close —
        ``Connection: close`` is stamped while draining); only then does
        the batcher shut down.  Idle keep-alive connections are cut last:
        they hold no work.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._idle.wait()
        for w in list(self._writers):
            w.close()
        await self.stop()

    async def serve_forever(self) -> None:
        """Run until cancelled (KeyboardInterrupt-friendly)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()


class _HttpError(Exception):
    """Framing-level failure with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def serve(
    config: ServiceConfig | None = None,
    sock: "socket.socket | None" = None,
    ready: "Any | None" = None,
) -> None:
    """Blocking entry point: run a server until interrupted.

    SIGTERM triggers a graceful drain (stop accepting, finish in-flight
    requests, then exit) — what the prefork supervisor sends its workers
    on shutdown, and what process managers send everywhere else.
    ``sock`` is a pre-bound listener to adopt (supervisor fallback when
    ``SO_REUSEPORT`` is unavailable); ``ready`` is an optional event
    whose ``set()`` is called once the socket is accepting.
    """
    server = ServiceServer(config)

    async def _main() -> None:
        await server.start(sock=sock)
        host, port = server.config.host, server.port
        if ready is not None:
            ready.set()
        if server.config.worker_index is None:
            print(f"repro service listening on http://{host}:{port}", flush=True)
        loop = asyncio.get_running_loop()
        term: asyncio.Future[None] = loop.create_future()
        try:
            loop.add_signal_handler(
                signal.SIGTERM, lambda: term.done() or term.set_result(None)
            )
        except (NotImplementedError, RuntimeError):  # non-Unix event loops
            pass
        try:
            # start() already accepts in the background; just park here.
            await term
            await server.drain()
        except asyncio.CancelledError:
            await server.stop()
            raise

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


class BackgroundServer:
    """A server on its own thread + event loop (tests and benchmarks).

    Use as a context manager::

        with BackgroundServer(ServiceConfig(port=0)) as srv:
            client = ServiceClient("127.0.0.1", srv.port)
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.server = ServiceServer(config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self.port: int = -1

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10) or self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error}")
        return self

    def _run(self) -> None:
        async def _main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                await self.server.start()
                self.port = self.server.port
            except BaseException as exc:
                self._error = exc
                self._ready.set()
                return
            self._ready.set()
            try:
                await self.server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.server.stop()

        asyncio.run(_main())

    def __exit__(self, *exc_info: object) -> None:
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            loop.call_soon_threadsafe(self._cancel_all)
            thread.join(timeout=10)

    def _cancel_all(self) -> None:
        assert self._loop is not None
        for task in asyncio.all_tasks(self._loop):
            task.cancel()
