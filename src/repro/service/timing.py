"""Per-request latency attribution for the service path.

A request's wall time decomposes into six stages:

``parse``
    JSON decode + request validation (config parsing).
``coalesce_wait``
    Time spent attached to another request's in-flight computation (a
    coalesced duplicate's dominant stage) — computed as the *residual*
    of the handler await not covered by the measured stages below.
``batch_window``
    Queue time in the micro-batcher: enqueue until the dispatch actually
    starts (bounded-delay window + any wait behind ``max_inflight``).
``cache_probe``
    The ``split_cached`` sweep against the shared result cache.
``compute``
    The engine dispatch (``run_simulations`` / ``optimal_host``) for the
    batch the request's critical-path job rode.
``serialize``
    ``canonical_dumps`` of the response payload.

The server activates a :class:`RequestTiming` in a ``contextvars``
context before dispatching; batcher jobs created anywhere below (asyncio
tasks copy the context at creation) register per-job records and fill in
their measured stage durations.  At response time
:meth:`RequestTiming.finalize` picks the **critical-path job** — the one
that resolved last; it is what the response actually waited for — and
reconciles: measured stages are scaled down if they exceed the handler
await (overlap can otherwise double-count), and the unexplained
remainder becomes ``coalesce_wait``.  By construction
``parse + coalesce_wait + batch_window + cache_probe + compute +
serialize`` equals the measured wall time up to the few microseconds of
framing code between the timestamps (the acceptance gate asserts 5%).

All times are seconds on ``time.monotonic`` (== ``loop.time``).
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Iterator

__all__ = ["RequestTiming", "STAGES", "activate", "current", "job_record"]

#: Stage keys, in report order.
STAGES = (
    "parse",
    "coalesce_wait",
    "batch_window",
    "cache_probe",
    "compute",
    "serialize",
)

_REQ: contextvars.ContextVar["RequestTiming | None"] = contextvars.ContextVar(
    "repro_request_timing", default=None
)


class RequestTiming:
    """Mutable per-request stage accumulator.

    ``jobs`` holds one dict per batcher job the request spawned, with
    keys ``enqueued``/``window``/``probe``/``compute``/``resolved``
    filled in by the batcher as the job moves through its pipeline.  All
    writes happen on the event loop thread; no lock is needed.
    """

    __slots__ = ("jobs",)

    def __init__(self) -> None:
        self.jobs: list[dict[str, float]] = []

    def new_job(self) -> dict[str, float]:
        """Register (and return) a per-job stage record."""
        rec: dict[str, float] = {}
        self.jobs.append(rec)
        return rec

    def finalize(self, parse: float, handle: float, serialize: float) -> dict[str, float]:
        """The six-stage breakdown for this request.

        ``parse``/``handle``/``serialize`` are the contiguous wall
        segments the server measured around decode, handler await, and
        response serialization.  The handler segment is attributed to the
        critical-path job's measured stages; whatever it does not explain
        — waiting on a coalesced sibling's computation, event-loop
        scheduling — is ``coalesce_wait``.
        """
        window = probe = compute = 0.0
        if self.jobs:
            crit = max(self.jobs, key=lambda j: j.get("resolved", 0.0))
            window = crit.get("window", 0.0)
            probe = crit.get("probe", 0.0)
            compute = crit.get("compute", 0.0)
        measured = window + probe + compute
        if measured > handle > 0.0:
            # Stage intervals can overlap the handler segment's edges
            # (e.g. a batch the job shared kept computing after this
            # request's row resolved); scale rather than report stages
            # that sum past the wall time they are meant to explain.
            scale = handle / measured
            window *= scale
            probe *= scale
            compute *= scale
            measured = handle
        return {
            "parse": parse,
            "coalesce_wait": max(0.0, handle - measured),
            "batch_window": window,
            "cache_probe": probe,
            "compute": compute,
            "serialize": serialize,
        }


@contextlib.contextmanager
def activate() -> Iterator[RequestTiming]:
    """Install a fresh :class:`RequestTiming` for the current context."""
    rt = RequestTiming()
    token = _REQ.set(rt)
    try:
        yield rt
    finally:
        _REQ.reset(token)


def current() -> RequestTiming | None:
    """The active request's timing accumulator, if any."""
    return _REQ.get()


def job_record() -> dict[str, float] | None:
    """Register a per-job record on the active request (or ``None``)."""
    rt = _REQ.get()
    return rt.new_job() if rt is not None else None
