"""Bounded-delay micro-batching of simulate requests.

The fast engine's throughput comes from batch size: one
:func:`~repro.simulation.fastpath.simulate_batch` call over N compatible
configs costs far less than N single-config calls (shared stream
seeding, one vectorized driver loop).  A service receiving many small
independent requests recreates exactly the workload shape that wastes
it — unless requests are fused.

:class:`Batcher` implements continuous micro-batching: submissions queue
up; a drain task sleeps for a bounded ``window`` (the latency price of
batching, default a few milliseconds), then drains up to ``max_batch``
jobs and dispatches them to a thread-pool executor running the blocking
batch runner (:func:`~repro.simulation.pool.run_simulations`, which
fuses the fast-engine configs of each worker chunk into one
``simulate_batch`` pass).  While a dispatch computes, new arrivals
accumulate into the next batch — the same continuous-batching discipline
VELOC's engine queue applies to checkpoint flushes.

Two invariants the tests pin:

* **Determinism** — batch composition never changes results: every
  config owns its seed's RNG streams, so a fused response is
  bit-identical to a serial one.
* **Engine isolation** — DES-engine jobs are dispatched in a *separate*
  group from fast-engine jobs, and inside the pool a chunk's DES configs
  run through the per-config :func:`~repro.simulation.simulator.simulate`
  loop; a DES request therefore never rides a fast-engine fused batch.

Scheduling (PR 10): the queue is no longer FIFO.  Each drained window
sorts by **earliest deadline first within priority class** (with aging,
so a low-priority job waiting long enough eventually outranks fresh
high-priority arrivals and can never starve), jobs whose deadline has
already passed are answered with a fast :class:`DeadlineExceeded` —
they never touch the runner — and an **admission controller** rejects
new work with :class:`Overloaded` (HTTP 503 + ``Retry-After``) once the
queue's estimated drain time exceeds a configurable budget.  Overload
then degrades into a bounded queue with explicit backpressure instead
of a collapsing tail.
"""

from __future__ import annotations

import asyncio
import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..simulation.pool import ResultCache, split_cached
from ..simulation.simulator import SimConfig
from ..simulation.stats import SimulationResult
from . import timing as req_timing
from .protocol import QoS

__all__ = ["Batcher", "BatchStats", "DeadlineExceeded", "Overloaded"]


class DeadlineExceeded(Exception):
    """The request's deadline expired before its batch dispatched.

    The scheduler answers these *without* computing: the client has
    already given up, so burning engine time on the result only delays
    every request still inside its deadline.  Maps to HTTP 504.
    """


class Overloaded(Exception):
    """Admission refused: the queue cannot drain within its budget.

    ``retry_after`` is the estimated seconds until the backlog clears —
    the server forwards it as the HTTP 503 ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after

_BATCHES = obs_metrics.REGISTRY.counter(
    "service_batches_total", "fused simulation batches dispatched, by engine"
)
_BATCHED = obs_metrics.REGISTRY.counter(
    "service_batched_requests_total", "simulate jobs dispatched inside batches, by engine"
)
_QUEUE_DEPTH = obs_metrics.REGISTRY.gauge(
    "service_queue_depth", "simulate jobs waiting for the next batch window"
)
_BATCH_SECONDS = obs_metrics.REGISTRY.histogram(
    "service_batch_seconds", "wall seconds per dispatched batch"
)
_CACHE_SLICED = obs_metrics.REGISTRY.counter(
    "service_batch_cache_hits_total",
    "simulate jobs resolved from the result cache before dispatch, by engine",
)
_SHED = obs_metrics.REGISTRY.counter(
    "service_shed_total",
    "simulate jobs rejected at admission (queue budget exceeded)",
)
_EXPIRED = obs_metrics.REGISTRY.counter(
    "service_expired_total",
    "simulate jobs whose deadline passed before dispatch (answered without computing)",
)


@dataclass
class BatchStats:
    """Aggregate batching counters (the benchmark's raw material)."""

    submitted: int = 0
    batches: dict[str, int] = field(default_factory=lambda: {"fast": 0, "des": 0})
    batched_jobs: dict[str, int] = field(default_factory=lambda: {"fast": 0, "des": 0})
    max_batch_seen: int = 0
    cache_hits: int = 0
    shed: int = 0
    expired: int = 0

    def mean_batch_size(self, engine: str = "fast") -> float:
        """Mean jobs per dispatched batch for ``engine`` (0.0 if none)."""
        n = self.batches.get(engine, 0)
        return self.batched_jobs.get(engine, 0) / n if n else 0.0


@dataclass
class _Job:
    config: SimConfig
    future: asyncio.Future
    #: Request-tree context captured at submit (the submitting request's
    #: innermost open span) — the batcher's per-job spans hang off it.
    ctx: "obs_trace.TraceContext | None" = None
    #: Per-job latency-attribution record on the submitting request
    #: (``None`` when no request timing is active).
    rec: dict | None = None
    #: Enqueue time on the loop clock (filled at submit).
    enqueued: float = 0.0
    #: Absolute deadline on the loop clock (``inf`` = no deadline).
    deadline: float = math.inf
    #: Priority class (lower = more urgent).
    priority: int = 0
    #: Submission sequence number: the tiebreak that keeps scheduling
    #: deterministic (and FIFO among equals).
    seq: int = 0

    def sort_key(self, now: float, aging: float) -> tuple[float, float, int]:
        """EDF within (aged) priority class.

        A job's effective class improves by one for every ``aging``
        seconds it has waited, so the low class is starvation-free: any
        job eventually ages into class 0 and dispatches ahead of fresh
        arrivals no matter how hot the high classes run.
        """
        waited = max(0.0, now - self.enqueued)
        effective = self.priority - int(waited / aging)
        return (effective, self.deadline, self.seq)


class Batcher:
    """Queue + drain loop fusing submissions into batched runner calls.

    Parameters
    ----------
    runner:
        Blocking ``configs -> results`` callable (order-preserving), run
        on the executor.  The server passes a closure over
        :func:`~repro.simulation.pool.run_simulations` with its shared
        cache.
    window:
        Bounded batching delay in seconds: the drain task sleeps this
        long after waking so concurrent arrivals can join the batch.
        ``0`` still yields to the event loop once, so requests that are
        *already* queued fuse, but nothing waits for stragglers.
    max_batch:
        Jobs per dispatch, the fusion cap.  ``1`` disables fusion
        entirely (the benchmark's naive baseline).
    max_inflight:
        Concurrent dispatches (executor threads).  While one batch
        computes, the next accumulates — keep >= 2 so the queue never
        idles behind a running batch.
    cache:
        Optional shared :class:`~repro.simulation.pool.ResultCache`.
        When set, each drained batch is sliced against the cache *before*
        engine dispatch (miss-only slicing): warm jobs resolve straight
        from the cache and only the misses enter the fused
        ``simulate_batch`` pass.  Results are unchanged — the runner's
        pool performs the same lookup — but a partially warm batch no
        longer drags its hits through full-width engine groups.
    queue_budget:
        Admission-control budget in seconds, or ``None`` (default) for
        unbounded queueing.  When set, a submission is rejected with
        :class:`Overloaded` once the queue's estimated drain time —
        queued batches ahead x the EWMA observed per-batch service time
        — exceeds the budget.  Accepted requests then keep a bounded
        queue delay under any offered load; the excess gets an explicit
        503 + ``Retry-After`` instead of an unbounded tail.
    aging:
        Seconds of waiting that promote a queued job by one priority
        class (starvation control).  Must be > 0.
    """

    def __init__(
        self,
        runner: Callable[[list[SimConfig]], Sequence[SimulationResult]],
        *,
        window: float = 0.002,
        max_batch: int = 256,
        max_inflight: int = 2,
        cache: ResultCache | None = None,
        queue_budget: float | None = None,
        aging: float = 1.0,
    ) -> None:
        if window < 0:
            raise ValueError(f"window must be >= 0: {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1: {max_inflight}")
        if queue_budget is not None and queue_budget <= 0:
            raise ValueError(f"queue_budget must be > 0: {queue_budget}")
        if aging <= 0:
            raise ValueError(f"aging must be > 0: {aging}")
        self._runner = runner
        self.cache = cache
        self.window = window
        self.max_batch = max_batch
        self.queue_budget = queue_budget
        self.aging = aging
        self.stats = BatchStats()
        self._queue: list[_Job] = []
        self._seq = 0
        #: EWMA of observed per-batch service seconds (None until the
        #: first batch completes; admission never sheds blind).
        self._batch_ewma: float | None = None
        self._drainer: asyncio.Task | None = None
        self._sem = asyncio.Semaphore(max_inflight)
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-batch"
        )
        self._closed = False

    def close(self) -> None:
        """Stop accepting work and release the executor threads."""
        self._closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for the next batch window."""
        return len(self._queue)

    def estimated_delay(self) -> float:
        """Estimated seconds for the current queue to drain.

        Queued-batches-ahead x the EWMA per-batch service time (0.0
        until a batch has completed: admission never sheds before it has
        observed what a batch costs).  With ``max_batch=1`` this is
        exactly "queue depth x per-batch service time".
        """
        if self._batch_ewma is None or not self._queue:
            return 0.0
        batches_ahead = math.ceil(len(self._queue) / self.max_batch)
        return batches_ahead * self._batch_ewma

    async def submit(self, config: SimConfig, qos: QoS | None = None) -> SimulationResult:
        """Queue one config; resolves with its simulation result.

        Identical concurrent configs should be deduplicated *before*
        submission (the server routes through the
        :class:`~repro.service.coalescer.Coalescer`); the batcher fuses
        *distinct* configs.

        ``qos`` carries the request's deadline and priority class.
        Raises :class:`Overloaded` at admission when the queue budget is
        exceeded, and the returned future fails with
        :class:`DeadlineExceeded` if the deadline passes before the
        job's batch dispatches.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        qos = qos or QoS()
        loop = asyncio.get_running_loop()
        if self.queue_budget is not None:
            est = self.estimated_delay()
            if est > self.queue_budget:
                self.stats.shed += 1
                _SHED.inc()
                raise Overloaded(
                    f"queue drain estimate {est:.3f}s exceeds the "
                    f"{self.queue_budget:.3f}s budget",
                    retry_after=max(1.0, math.ceil(est)),
                )
        now = loop.time()
        self._seq += 1
        job = _Job(
            config=config,
            future=loop.create_future(),
            ctx=obs_trace.current_context(),
            rec=req_timing.job_record(),
            enqueued=now,
            deadline=now + qos.deadline_s if qos.deadline_s is not None else math.inf,
            priority=qos.priority,
            seq=self._seq,
        )
        if job.rec is not None:
            job.rec["enqueued"] = job.enqueued
        self._queue.append(job)
        self.stats.submitted += 1
        _QUEUE_DEPTH.set(len(self._queue))
        if self._drainer is None or self._drainer.done():
            self._drainer = loop.create_task(self._drain_loop())
        return await job.future

    def _expire(self, now: float) -> None:
        """Fail every queued job whose deadline has already passed.

        This is the fast 504: the job never reaches the runner (no
        ``compute`` span ever appears in its request tree — the
        acceptance tests pin that), and the slots it would have taken in
        the next batch go to jobs that can still make their deadlines.
        """
        live: list[_Job] = []
        for job in self._queue:
            if job.deadline < now:
                self.stats.expired += 1
                _EXPIRED.inc()
                if job.ctx is not None and obs_trace.enabled():
                    obs_trace.emit(
                        "batcher", job.enqueued, now, "expired", ctx=job.ctx
                    )
                if not job.future.done():
                    job.future.set_exception(
                        DeadlineExceeded(
                            f"deadline expired {now - job.deadline:.3f}s "
                            "before dispatch"
                        )
                    )
            else:
                live.append(job)
        self._queue = live

    async def _drain_loop(self) -> None:
        while self._queue and not self._closed:
            if self.window > 0 and len(self._queue) < self.max_batch:
                # Bounded delay so concurrent arrivals can fuse; skipped
                # under backlog (a full batch is already waiting).
                await asyncio.sleep(self.window)
            else:
                # Yield once: siblings already scheduled this tick get to
                # enqueue and fuse, but nobody waits for future arrivals.
                await asyncio.sleep(0)
            # Hold a dispatch slot *before* slicing the queue: while
            # every slot is busy, waiting jobs stay in the queue, where
            # they remain schedulable (each window re-sorts), expirable
            # (the fast 504) and visible to admission control
            # (queue_depth stays honest under backlog).
            await self._sem.acquire()
            now = asyncio.get_running_loop().time()
            self._expire(now)
            # EDF within (aged) priority class; seq breaks ties so the
            # schedule is deterministic.  Sorting the whole queue each
            # window is O(n log n) over at most a few thousand waiting
            # jobs — noise next to a single engine dispatch.
            self._queue.sort(key=lambda j: j.sort_key(now, self.aging))
            take = min(self.max_batch, len(self._queue))
            jobs, self._queue = self._queue[:take], self._queue[take:]
            _QUEUE_DEPTH.set(len(self._queue))
            if not jobs:
                self._sem.release()
                continue
            # Engine isolation: DES jobs never share a dispatch with the
            # fast-engine fusion group.
            fast = [j for j in jobs if j.config.engine == "fast"]
            des = [j for j in jobs if j.config.engine != "fast"]
            asyncio.get_running_loop().create_task(
                self._dispatch_slot(fast, des)
            )

    async def _dispatch_slot(self, fast: list[_Job], des: list[_Job]) -> None:
        """Run one drained window's engine groups under one slot.

        Owns the dispatch slot the drain loop acquired; a mixed window's
        two engine groups run sequentially under it (isolation is about
        separate runner calls, not parallelism).
        """
        try:
            for engine, group in (("fast", fast), ("des", des)):
                if group:
                    await self._dispatch(engine, group)
        finally:
            self._sem.release()

    async def _dispatch(self, engine: str, jobs: list[_Job]) -> None:
        loop = asyncio.get_running_loop()
        # Batch-window attribution: enqueue -> dispatch actually
        # starting (bounded delay + any wait behind max_inflight).
        t_start = loop.time()
        traced = obs_trace.enabled()
        for job in jobs:
            if job.rec is not None:
                job.rec["window"] = t_start - job.enqueued
            if traced and job.ctx is not None:
                obs_trace.emit(
                    "batcher", job.enqueued, t_start, "window",
                    label=engine, ctx=job.ctx,
                )
        if self.cache is not None:
            # Miss-only slicing: probe the cache off the event loop,
            # resolve warm jobs immediately and dispatch only misses.
            tp0 = loop.time()
            hits, pending, _ = await loop.run_in_executor(
                self._executor,
                split_cached,
                [j.config for j in jobs],
                self.cache,
            )
            tp1 = loop.time()
            for job in jobs:
                if job.rec is not None:
                    job.rec["probe"] = tp1 - tp0
                if traced and job.ctx is not None:
                    obs_trace.emit(
                        "batcher", tp0, tp1, "cache_probe",
                        label=engine, ctx=job.ctx,
                    )
            n_hits = len(jobs) - len(pending)
            if n_hits:
                for job, hit in zip(jobs, hits):
                    if hit is not None:
                        if job.rec is not None:
                            job.rec["resolved"] = tp1
                        if not job.future.done():
                            job.future.set_result(hit)
                _CACHE_SLICED.inc(n_hits, engine=engine)
                self.stats.cache_hits += n_hits
                jobs = [jobs[i] for i, _ in pending]
                if not jobs:
                    # Fully warm batch: no compute span in any tree.
                    return
        t0 = loop.time()
        configs = [j.config for j in jobs]
        # One real compute span, opened in the executor thread under
        # the batch leader's request context so the pool chunks and
        # fastpath groups below it join the leader's tree; every
        # other rider records a reference interval linking it.
        lead_ctx = (
            next((j.ctx for j in jobs if j.ctx is not None), None)
            if traced
            else None
        )
        compute_ctx: list[str | None] = [None]

        def _run() -> Sequence[SimulationResult]:
            if lead_ctx is None:
                return self._runner(configs)
            with obs_trace.use_context(lead_ctx):
                with obs_trace.span(
                    "batcher", "compute", label=engine, jobs=len(configs)
                ) as sp:
                    compute_ctx[0] = sp.ctx_id
                    return self._runner(configs)

        try:
            results = await loop.run_in_executor(self._executor, _run)
        except Exception as exc:  # runner failure fans out to all waiters
            for job in jobs:
                if not job.future.done():
                    job.future.set_exception(exc)
            return
        finally:
            t1 = loop.time()
            for job in jobs:
                if job.rec is not None:
                    job.rec["compute"] = t1 - t0
                    job.rec["resolved"] = t1
            if traced:
                shared = compute_ctx[0]
                for job in jobs:
                    if job.ctx is not None and job.ctx is not lead_ctx:
                        obs_trace.emit(
                            "batcher", t0, t1, "compute", label=f"{engine}-shared",
                            attrs={"jobs": len(configs)},
                            ctx=job.ctx,
                            links=[shared] if shared else None,
                        )
            # Admission control's service-time signal: EWMA over
            # dispatched batches (0.3 keeps it responsive to load
            # shifts without chattering on one slow batch).
            self._batch_ewma = (
                t1 - t0
                if self._batch_ewma is None
                else 0.3 * (t1 - t0) + 0.7 * self._batch_ewma
            )
            _BATCH_SECONDS.observe(t1 - t0, engine=engine)
            _BATCHES.inc(engine=engine)
            _BATCHED.inc(len(jobs), engine=engine)
            self.stats.batches[engine] = self.stats.batches.get(engine, 0) + 1
            self.stats.batched_jobs[engine] = (
                self.stats.batched_jobs.get(engine, 0) + len(jobs)
            )
            self.stats.max_batch_seen = max(self.stats.max_batch_seen, len(jobs))
        if len(results) != len(jobs):  # pragma: no cover - defensive
            exc = RuntimeError(
                f"runner returned {len(results)} results for {len(jobs)} configs"
            )
            for job in jobs:
                if not job.future.done():
                    job.future.set_exception(exc)
            return
        for job, result in zip(jobs, results):
            if not job.future.done():
                job.future.set_result(result)
