"""Prefork multi-process serving: one port, N worker processes.

The asyncio server is single-threaded by design — the GIL-free work
already runs on executor threads and pool processes, but request framing,
coalescing and batching all share one event loop.  Past a few thousand
requests per second that loop is the bottleneck.  The classic fix is the
prefork model: a parent supervisor spawns N worker processes that each
run the full :class:`~repro.service.server.ServiceServer` stack and
**share one TCP port**.

Two sharing mechanisms, picked automatically:

``SO_REUSEPORT`` (Linux, modern BSD — the preferred path)
    Every worker binds its *own* listening socket to the same address
    with ``SO_REUSEPORT``; the kernel hashes incoming connections across
    the listeners.  No accept lock, no thundering herd, per-worker
    accept queues.  The parent reserves the port (and resolves
    ``port=0``) with a bound-but-never-listening placeholder socket:
    only *listening* sockets join the kernel's distribution group, so
    the placeholder never steals a connection.

Inherited listener (the portable fallback)
    The parent binds and listens once; forked workers adopt the same
    socket via ``asyncio.start_server(sock=...)`` and take turns
    accepting from its shared queue.

Worker processes are forked (the pool's own preference — see
``simulation.pool``), so the supervisor must run before any threads are
started in the parent.  Each worker:

* resets the inherited metrics registry and stamps every exported
  sample with its ``worker="<i>"`` label;
* publishes its ``/stats`` snapshot into a shared ``stats_dir`` so any
  worker — the kernel picks which one answers a scrape — can merge the
  whole group into one response;
* drains gracefully on SIGTERM (stop accepting, finish in-flight
  requests, exit).

The parent restarts crashed workers (same index, same socket) until
:meth:`WorkerSupervisor.stop` — a wedged or OOM-killed worker costs its
in-flight requests, never the service.

Determinism is untouched: workers share the on-disk
:class:`~repro.simulation.pool.ResultCache` (atomic, multi-writer-safe
by construction) and every response is rendered by ``canonical_dumps``
from seed-owned RNG streams, so which worker serves a request can never
change a byte of the response — the equivalence tests pin serial vs
multi-process byte identity.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import socket
import threading
import time
from dataclasses import replace
from tempfile import mkdtemp

from .server import ServiceConfig, serve

__all__ = ["SO_REUSEPORT_AVAILABLE", "WorkerSupervisor", "serve_prefork"]

#: Whether this platform can kernel-load-balance accepts across workers.
SO_REUSEPORT_AVAILABLE = hasattr(socket, "SO_REUSEPORT")


def _reserve_port(host: str, port: int) -> socket.socket:
    """A bound, *non-listening* SO_REUSEPORT placeholder.

    Reserves the address (resolving ``port=0`` to a real port) without
    joining the kernel's accept-distribution group — a socket must
    listen to receive connections, and this one never does.
    """
    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        s.bind((host, port))
    except OSError:
        s.close()
        raise
    return s


def _shared_listener(host: str, port: int) -> socket.socket:
    """The fallback: one listening socket every forked worker inherits."""
    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind((host, port))
        s.listen(128)
    except OSError:
        s.close()
        raise
    return s


def _worker_main(
    config: ServiceConfig, sock: socket.socket | None, ready
) -> None:
    """A worker process: the full server stack on the shared port.

    Runs in a forked child.  The inherited metrics registry is zeroed
    first (fork copies the parent's counts; a worker's exports must
    start from its own zero) and then stamped with the worker label.
    ``serve`` installs the SIGTERM -> graceful-drain handler.
    """
    from ..obs import metrics as obs_metrics

    # The supervisor's own INT handler must not fire in the worker: a
    # Ctrl-C at the terminal reaches the whole process group, and the
    # workers' shutdown is the parent's SIGTERM to orchestrate.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    obs_metrics.REGISTRY.reset()
    serve(config, sock=sock, ready=ready)


class WorkerSupervisor:
    """Parent of a prefork worker group sharing one port.

    Usable as a context manager (tests do)::

        with WorkerSupervisor(ServiceConfig(port=0), procs=4) as sup:
            client = ServiceClient("127.0.0.1", sup.port)

    ``start`` binds/reserves the port, forks ``procs`` workers, and
    blocks until every worker's socket is accepting.  A monitor thread
    restarts any worker that dies (``restarts`` counts them).  ``stop``
    SIGTERMs the group, waits for graceful drains, and SIGKILLs
    stragglers past the timeout.
    """

    def __init__(self, config: ServiceConfig | None = None, procs: int = 2) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1: {procs}")
        self.config = config or ServiceConfig()
        self.procs = procs
        self.port: int = -1
        self.restarts = 0
        self.reuse_port = SO_REUSEPORT_AVAILABLE
        self._ctx = mp.get_context("fork")
        self._placeholder: socket.socket | None = None
        self._shared_sock: socket.socket | None = None
        self._workers: list[mp.process.BaseProcess | None] = [None] * procs
        self._stopping = threading.Event()
        self._monitor_thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.stats_dir = self.config.stats_dir or mkdtemp(prefix="repro-workers-")

    # -- lifecycle ------------------------------------------------------------

    def start(self, ready_timeout: float = 15.0) -> "WorkerSupervisor":
        host, port = self.config.host, self.config.port
        if self.reuse_port:
            self._placeholder = _reserve_port(host, port)
            self.port = self._placeholder.getsockname()[1]
        else:
            self._shared_sock = _shared_listener(host, port)
            self.port = self._shared_sock.getsockname()[1]
        for i in range(self.procs):
            self._spawn(i, ready_timeout)
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="repro-supervisor", daemon=True
        )
        self._monitor_thread.start()
        return self

    def _worker_config(self, index: int) -> ServiceConfig:
        return replace(
            self.config,
            port=self.port,
            reuse_port=self.reuse_port,
            worker_index=index,
            stats_dir=self.stats_dir,
        )

    def _spawn(self, index: int, ready_timeout: float) -> None:
        ready = self._ctx.Event()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._worker_config(index), self._shared_sock, ready),
            name=f"repro-worker-{index}",
            daemon=False,
        )
        proc.start()
        self._workers[index] = proc
        if not ready.wait(ready_timeout):
            raise RuntimeError(
                f"worker {index} (pid {proc.pid}) did not become ready "
                f"within {ready_timeout}s"
            )

    def _monitor(self) -> None:
        """Restart crashed workers until the supervisor stops.

        A worker that exits while we are not stopping did so abnormally
        (graceful exits only happen on our SIGTERM); it is respawned at
        the same index — same port, same shared socket, same stats slot.
        """
        while not self._stopping.wait(0.1):
            for i, proc in enumerate(self._workers):
                if proc is None or proc.is_alive() or self._stopping.is_set():
                    continue
                proc.join()
                with self._lock:
                    if self._stopping.is_set():
                        break
                    self.restarts += 1
                    try:
                        self._spawn(i, ready_timeout=15.0)
                    except (RuntimeError, OSError):
                        # Couldn't respawn (port gone, fork failure);
                        # leave the slot dead rather than spin.
                        self._workers[i] = None

    def worker_pids(self) -> list[int]:
        """Live worker pids, by index (crashed slots omitted)."""
        return [
            p.pid
            for p in self._workers
            if p is not None and p.is_alive() and p.pid is not None
        ]

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful group shutdown: SIGTERM, drain, join, then SIGKILL."""
        with self._lock:
            self._stopping.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=5.0)
            self._monitor_thread = None
        for proc in self._workers:
            if proc is not None and proc.is_alive() and proc.pid is not None:
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
        deadline = time.monotonic() + timeout
        for proc in self._workers:
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self._workers = [None] * self.procs
        if self._placeholder is not None:
            self._placeholder.close()
            self._placeholder = None
        if self._shared_sock is not None:
            self._shared_sock.close()
            self._shared_sock = None

    def __enter__(self) -> "WorkerSupervisor":
        try:
            return self.start()
        except BaseException:
            self.stop()
            raise

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_prefork(config: ServiceConfig | None = None, procs: int = 2) -> None:
    """Blocking entry point for ``repro serve --procs N``."""
    sup = WorkerSupervisor(config, procs)
    sup.start()
    mode = "SO_REUSEPORT" if sup.reuse_port else "shared listener"
    print(
        f"repro service listening on http://{sup.config.host}:{sup.port} "
        f"({procs} workers, {mode})",
        flush=True,
    )
    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal handler shape
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        while not stop.wait(0.5):
            pass
    finally:
        sup.stop()
