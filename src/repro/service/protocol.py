"""Request/response schema for the capacity-planning service.

One place defines how JSON becomes typed scenario objects
(:class:`~repro.core.configs.CRParameters`,
:class:`~repro.core.configs.CompressionSpec`,
:class:`~repro.simulation.simulator.SimConfig`) and how results go back
out.  Two properties matter beyond ordinary parsing:

* **Strictness** — unknown keys, wrong types and out-of-range values all
  raise :class:`ProtocolError` (the server maps it to HTTP 400).  The
  dataclasses' own ``__post_init__`` validation is reused rather than
  duplicated; their ``ValueError`` messages pass through verbatim.
* **Determinism** — :func:`canonical_dumps` renders every response with
  sorted keys, compact separators and ``repr``-exact floats, so a
  coalesced or batch-fused response is **byte-identical** to what a
  serial, single-request evaluation of the same config would produce.
  That is the service-level restatement of the pool's determinism
  contract, and the equivalence tests assert it byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping

from ..core.configs import (
    HOST_GZIP1,
    NDP_GZIP1,
    NO_COMPRESSION,
    CompressionSpec,
    CRParameters,
)
from ..core.model import ModelResult
from ..simulation.simulator import SimConfig, default_work
from ..simulation.stats import SimulationResult

__all__ = [
    "ProtocolError",
    "COMPRESSION_PRESETS",
    "DEFAULT_PRIORITY",
    "PRIORITY_MAX",
    "PRIORITY_MIN",
    "QoS",
    "canonical_dumps",
    "compression_from_json",
    "config_from_json",
    "model_result_to_json",
    "params_from_json",
    "qos_from_json",
    "result_to_json",
    "sweep_rows_from_json",
]


class ProtocolError(ValueError):
    """Malformed request body (the server answers HTTP 400 with this)."""


#: Named compression engines clients may reference instead of spelling
#: out rates: the paper's host-side and NDP-side gzip(1) engines.
COMPRESSION_PRESETS: dict[str, CompressionSpec] = {
    "none": NO_COMPRESSION,
    "host-gzip1": HOST_GZIP1,
    "ndp-gzip1": NDP_GZIP1,
}

_PARAM_FIELDS = {f.name for f in dataclasses.fields(CRParameters)}
_COMPRESSION_FIELDS = {f.name for f in dataclasses.fields(CompressionSpec)}
#: SimConfig fields a request may set directly (``params``/``compression``
#: arrive as nested objects; ``trace`` is a live in-process object and can
#: never cross the wire; ``work`` competes with ``work_mttis``).
_CONFIG_FIELDS = {
    f.name for f in dataclasses.fields(SimConfig)
} - {"params", "compression", "trace"}


def _require_mapping(obj: Any, what: str) -> Mapping:
    if not isinstance(obj, Mapping):
        raise ProtocolError(f"{what} must be a JSON object, got {type(obj).__name__}")
    return obj


def _reject_unknown(body: Mapping, allowed: set[str], what: str) -> None:
    unknown = sorted(set(body) - allowed)
    if unknown:
        raise ProtocolError(
            f"unknown {what} key(s) {unknown}; allowed: {sorted(allowed)}"
        )


#: Priority classes: 0 is most urgent, 9 least; requests default to the
#: middle so explicit "interactive" and "batch" traffic can sort around
#: unmarked requests in both directions.
PRIORITY_MIN = 0
PRIORITY_MAX = 9
DEFAULT_PRIORITY = 4


@dataclasses.dataclass(frozen=True)
class QoS:
    """Scheduling hints carried by a request, outside the scenario.

    Deliberately **not** part of :class:`SimConfig`: a deadline or a
    priority changes *when* (and whether) a request computes, never what
    the computation returns — so QoS must stay out of the cache key and
    the byte-identity contract.

    ``deadline_s`` is a relative latency budget in seconds (wire field
    ``deadline_ms``); the scheduler turns it into an absolute deadline
    at admission.  ``None`` means "no deadline".
    """

    deadline_s: float | None = None
    priority: int = DEFAULT_PRIORITY


def qos_from_json(body: Any) -> tuple[QoS, Any]:
    """Split the QoS fields off a request body, strictly validated.

    Returns ``(qos, rest)`` where ``rest`` is the body with
    ``deadline_ms``/``priority`` removed (the scenario parsers reject
    unknown keys, so the split must happen first).  Non-mapping bodies
    pass through untouched — the scenario parser owns that error.
    """
    if not isinstance(body, Mapping):
        return QoS(), body
    rest = dict(body)
    deadline_ms = rest.pop("deadline_ms", None)
    priority = rest.pop("priority", DEFAULT_PRIORITY)
    deadline_s: float | None = None
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise ProtocolError(
                f"deadline_ms must be a number of milliseconds, got {deadline_ms!r}"
            )
        deadline_s = float(deadline_ms) / 1e3
        if not deadline_s > 0:
            raise ProtocolError(f"deadline_ms must be > 0: {deadline_ms!r}")
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ProtocolError(f"priority must be an integer, got {priority!r}")
    if not PRIORITY_MIN <= priority <= PRIORITY_MAX:
        raise ProtocolError(
            f"priority must be in [{PRIORITY_MIN}, {PRIORITY_MAX}]: {priority}"
        )
    return QoS(deadline_s=deadline_s, priority=priority), rest


def params_from_json(body: Any) -> CRParameters:
    """``{"mtti": ..., "checkpoint_size": ...}`` -> :class:`CRParameters`.

    Every field is optional (paper Table 4 defaults apply); unknown keys
    and dataclass-level validation failures raise :class:`ProtocolError`.
    """
    if body is None:
        return CRParameters()
    body = _require_mapping(body, "params")
    _reject_unknown(body, _PARAM_FIELDS, "params")
    try:
        return CRParameters(**body)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid params: {exc}") from exc


def compression_from_json(body: Any) -> CompressionSpec:
    """A preset name, ``null`` (no compression) or an explicit spec."""
    if body is None:
        return NO_COMPRESSION
    if isinstance(body, str):
        try:
            return COMPRESSION_PRESETS[body]
        except KeyError:
            raise ProtocolError(
                f"unknown compression preset {body!r}; "
                f"one of {sorted(COMPRESSION_PRESETS)}"
            ) from None
    body = _require_mapping(body, "compression")
    _reject_unknown(body, _COMPRESSION_FIELDS, "compression")
    try:
        return CompressionSpec(**body)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid compression: {exc}") from exc


def config_from_json(body: Any) -> SimConfig:
    """One simulate-request body -> a fully validated :class:`SimConfig`.

    Recognized keys: every :class:`SimConfig` field except ``trace``
    (``params`` and ``compression`` as nested objects / preset names),
    plus ``work_mttis`` — a work target expressed in mean-times-to-
    interrupt (mutually exclusive with ``work``; default 50 MTTIs, small
    enough for interactive latency, large enough for a stable estimate).

    The service default engine is ``"fast"`` — batching is the point —
    but a client may pin ``"des"`` and is then guaranteed to never ride
    a fused fast-engine batch.
    """
    body = dict(_require_mapping(body, "request"))
    _reject_unknown(
        body, _CONFIG_FIELDS | {"params", "compression", "work_mttis"}, "request"
    )
    params = params_from_json(body.pop("params", None))
    compression = compression_from_json(body.pop("compression", None))
    work_mttis = body.pop("work_mttis", None)
    if work_mttis is not None:
        if "work" in body:
            raise ProtocolError("give either work or work_mttis, not both")
        try:
            body["work"] = default_work(params, float(work_mttis))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid work_mttis: {exc}") from exc
    body.setdefault("work", default_work(params, 50.0))
    body.setdefault("engine", "fast")
    if body.get("failure_times") is not None:
        try:
            body["failure_times"] = tuple(float(t) for t in body["failure_times"])
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid failure_times: {exc}") from exc
    try:
        return SimConfig(params=params, compression=compression, **body)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid request: {exc}") from exc


def sweep_rows_from_json(body: Any) -> tuple[list[SimConfig], int, int]:
    """A sweep-request body -> flat per-(cell, seed) config rows.

    Schema: ``{"configs": [<simulate body>, ...], "seeds": [0, 1, ...]}``
    plus optional ``"detail"`` and ``"stream"`` flags (consumed by the
    server: include full per-seed results in each cell / answer as
    chunked NDJSON, one line per completed cell) — an explicit list of
    cells, each replicated per seed (any ``seed``
    on a cell is overwritten by the seed axis, exactly like
    :func:`~repro.simulation.grid.simulate_grid`).  Returns
    ``(rows, n_cells, n_seeds)`` with rows in cell-major order.
    """
    body = _require_mapping(body, "sweep request")
    _reject_unknown(body, {"configs", "seeds", "detail", "stream"}, "sweep")
    cells_raw = body.get("configs")
    if not isinstance(cells_raw, (list, tuple)) or not cells_raw:
        raise ProtocolError("sweep needs a non-empty 'configs' list")
    seeds_raw = body.get("seeds", [0])
    if not isinstance(seeds_raw, (list, tuple)) or not seeds_raw:
        raise ProtocolError("sweep 'seeds' must be a non-empty list")
    try:
        seeds = [int(s) for s in seeds_raw]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid seeds: {exc}") from exc
    cells = [config_from_json(c) for c in cells_raw]
    rows = [dataclasses.replace(cfg, seed=s) for cfg in cells for s in seeds]
    return rows, len(cells), len(seeds)


# -- responses --------------------------------------------------------------------


def result_to_json(result: SimulationResult) -> dict:
    """A :class:`SimulationResult` as a plain JSON-able dict."""
    out = dataclasses.asdict(result)
    out["breakdown"] = dataclasses.asdict(result.breakdown)
    return out


def model_result_to_json(result: ModelResult) -> dict:
    """A :class:`ModelResult` as a plain JSON-able dict (inputs echoed)."""
    return {
        "config": result.config,
        "efficiency": result.efficiency,
        "slowdown": result.slowdown,
        "breakdown": dataclasses.asdict(result.breakdown),
        "tau": result.tau,
        "ratio": result.ratio,
        "io_interval": result.io_interval,
        "params": dataclasses.asdict(result.params),
        "compression": dataclasses.asdict(result.compression),
    }


def canonical_dumps(payload: Any) -> bytes:
    """Deterministic JSON bytes: sorted keys, compact, repr-exact floats.

    Python's ``json`` renders floats via ``repr`` (shortest round-trip
    form), so two equal results serialize to identical bytes on any
    platform — the property the byte-identity acceptance tests pin.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=True
    ).encode("utf-8")
