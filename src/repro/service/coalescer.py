"""In-flight request coalescing keyed by config hash.

Under a skewed (zipfian) workload most concurrent requests ask the same
question.  The coalescer makes the popular config cost one computation:
the first submitter creates the in-flight entry and owns the work, every
concurrent duplicate attaches to the same future, and all waiters
receive the *same* result object.  Keys are
:func:`~repro.simulation.pool.config_key` hashes, so "identical" means
identical in the exact sense the on-disk result cache uses (every
scenario knob, the seed, the engine, the cache schema version).

Cancellation safety: waiters await a *shielded* view of the shared
future, so a client disconnecting mid-flight cancels only its own wait —
the computation keeps running and the remaining waiters are served.
This is the semantics VELOC's engine queue gives concurrent checkpoint
clients, applied to simulation requests.

Scope under prefork serving: the coalescer's keyspace is **per worker
process** — two identical requests landing on different ``SO_REUSEPORT``
workers each compute (or each hit the *shared* on-disk result cache,
which is the cross-worker dedup layer).  That is deliberate: an
in-flight future cannot cross a process boundary cheaply, and the
popular-key case still collapses to one computation per worker plus one
cache write, with byte-identical results on every path.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, TypeVar

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["Coalescer"]

T = TypeVar("T")

_COALESCED = obs_metrics.REGISTRY.counter(
    "service_coalesced_total",
    "requests attached to an identical in-flight computation",
)
_PRIMARY = obs_metrics.REGISTRY.counter(
    "service_coalesce_primary_total",
    "requests that started a new in-flight computation",
)


class Coalescer:
    """Deduplicate concurrent computations by key.

    ``await coalescer.get(key, start)`` either attaches to the in-flight
    computation registered under ``key`` or calls ``start()`` (which must
    return an awaitable) and registers it.  The entry is removed when the
    computation finishes, so *sequential* repeats recompute (that is the
    result cache's job, not the coalescer's).
    """

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        # key -> the primary waiter's span ctx id: the root of the shared
        # computation's subtree, which coalesced duplicates link so both
        # waiters' request trees name the one compute that served them.
        self._shared_ctx: dict[str, str] = {}
        self.primary = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    async def get(self, key: str, start: Callable[[], Awaitable[T]]) -> T:
        """The result for ``key``, computing via ``start`` at most once
        per in-flight window.

        The primary waiter runs ``start()`` inside a task registered
        under ``key``; duplicates share it.  Every waiter awaits through
        :func:`asyncio.shield`, so cancelling one waiter never cancels
        the shared computation or starves the others.  If the
        computation itself fails, every waiter sees the same exception.

        Tracing: the primary's wait span *contains* the shared
        computation (the ``start()`` task copies its context, so the
        batcher's job spans hang under it); each duplicate's wait span
        carries a ``links`` entry naming that span's ctx id, stitching
        its own request tree to the one compute that served it.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.coalesced += 1
            _COALESCED.inc()
            dup = obs_trace.span("coalescer", "wait", label="coalesced")
            dup.link(self._shared_ctx.get(key))
            with dup:
                return await asyncio.shield(existing)

        self.primary += 1
        _PRIMARY.inc()
        with obs_trace.span("coalescer", "wait", label="primary") as sp:
            # ensure_future copies the current context *inside* the span,
            # so the shared task's spans parent under it; publish its ctx
            # id before any duplicate can attach (no await in between).
            task = asyncio.ensure_future(start())
            self._inflight[key] = task
            if sp.ctx_id:
                self._shared_ctx[key] = sp.ctx_id

            def _cleanup(t: asyncio.Future) -> None:
                self._inflight.pop(key, None)
                self._shared_ctx.pop(key, None)
                # Retrieve the exception so an all-waiters-cancelled failure
                # does not trip the event loop's "never retrieved" warning.
                if not t.cancelled():
                    t.exception()

            task.add_done_callback(_cleanup)
            try:
                return await asyncio.shield(task)
            except asyncio.CancelledError:
                # Only this waiter was cancelled; the shared task runs on
                # for any coalesced waiters.  If nobody else is attached
                # the result is simply dropped (the batcher may still
                # cache it).
                raise
