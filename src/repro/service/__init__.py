"""Capacity-planning service: a batching, coalescing API over the model.

The simulation substrate (vectorized fast engine, worker pool, on-disk
result cache, memoized optimizer) is built for throughput, but a fresh
process per question pays full startup and shares nothing.  This package
serves it instead: a long-lived asyncio HTTP/JSON server
(:mod:`~repro.service.server`) where clients submit ``simulate`` /
``sweep`` / ``optimize`` requests and the server squeezes the substrate:

* **coalescing** (:mod:`~repro.service.coalescer`) — identical in-flight
  configs (by :func:`~repro.simulation.pool.config_key`) attach to one
  computation; every waiter receives the same result.
* **micro-batching** (:mod:`~repro.service.batcher`) — a bounded-delay
  batcher drains the request queue and fuses compatible fast-engine
  configs into single :func:`~repro.simulation.fastpath.simulate_batch`
  passes (via the existing worker pool), preserving the per-config
  bit-identical determinism contract.
* **shared state** — one process-wide
  :class:`~repro.simulation.pool.ResultCache` and the memoized
  ``core.optimizer._MEMO`` across all requests, plus ``/metrics``
  (Prometheus text from :data:`repro.obs.metrics.REGISTRY`) and
  ``/healthz``.

* **scale-out & tail control** — prefork multi-process serving on one
  ``SO_REUSEPORT`` port (:mod:`~repro.service.supervisor`), chunked
  NDJSON streaming for large sweeps, and deadline/priority scheduling
  with admission-control load shedding (:mod:`~repro.service.batcher`).

Everything is stdlib: ``asyncio`` transports with hand-rolled HTTP/1.1
framing, ``json`` bodies.  See ``docs/SERVICE.md`` for the API schema.
"""

from .batcher import Batcher, BatchStats, DeadlineExceeded, Overloaded
from .client import ServiceClient, ServiceError
from .coalescer import Coalescer
from .protocol import (
    ProtocolError,
    QoS,
    canonical_dumps,
    config_from_json,
    model_result_to_json,
    qos_from_json,
    result_to_json,
    sweep_rows_from_json,
)
from .server import BackgroundServer, ServiceConfig, ServiceServer, serve
from .supervisor import SO_REUSEPORT_AVAILABLE, WorkerSupervisor, serve_prefork

__all__ = [
    "BackgroundServer",
    "Batcher",
    "BatchStats",
    "Coalescer",
    "DeadlineExceeded",
    "Overloaded",
    "ProtocolError",
    "QoS",
    "SO_REUSEPORT_AVAILABLE",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "WorkerSupervisor",
    "canonical_dumps",
    "config_from_json",
    "model_result_to_json",
    "qos_from_json",
    "result_to_json",
    "serve",
    "serve_prefork",
    "sweep_rows_from_json",
]
