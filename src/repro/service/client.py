"""Minimal blocking client for the capacity-planning service.

A thin wrapper over :class:`http.client.HTTPConnection` (stdlib, keeps
the connection alive across requests) used by the tests, the smoke
target and the closed-loop load generator.  Each :class:`ServiceClient`
owns one socket, so N concurrent clients = N threads each holding one
connection — the classic closed-loop load model.
"""

from __future__ import annotations

import http.client
import json
from typing import Any

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Non-200 response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """One persistent connection to a service instance.

    ``trace_id`` stamps every request with an ``X-Repro-Trace`` header:
    the server adopts the id for its request tree (JSONL spans, the
    flight recorder) instead of minting one, so a client-side id is
    greppable end to end.  ``timing=True`` asks for the ``server_timing``
    stage breakdown in every ``/v1/*`` response.  The id the server
    actually used (inbound or minted) comes back in the response's
    ``X-Repro-Trace`` header and is kept in :attr:`last_trace_id`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8077,
        timeout: float = 60.0,
        trace_id: str | None = None,
        timing: bool = False,
    ):
        self.host = host
        self.port = port
        self.trace_id = trace_id
        self.timing = timing
        self.last_trace_id: str | None = None
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        trace_id: str | None = None,
    ) -> bytes:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        tid = trace_id or self.trace_id
        if tid:
            headers["X-Repro-Trace"] = tid
        if self.timing:
            headers["X-Repro-Timing"] = "1"
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            resp = self._conn.getresponse()
            data = resp.read()
        except (http.client.HTTPException, OSError):
            # One transparent reconnect: the server may have dropped an
            # idle keep-alive connection between requests.
            self._conn.close()
            self._conn.request(method, path, body=payload, headers=headers)
            resp = self._conn.getresponse()
            data = resp.read()
        self.last_trace_id = resp.headers.get("X-Repro-Trace") or self.last_trace_id
        if resp.status != 200:
            try:
                message = json.loads(data).get("error", data.decode("utf-8", "replace"))
            except (ValueError, AttributeError):
                message = data.decode("utf-8", "replace")
            raise ServiceError(resp.status, message)
        return data

    # -- raw and typed entry points -------------------------------------------

    def post_raw(self, path: str, body: dict, trace_id: str | None = None) -> bytes:
        """POST and return the raw response bytes (byte-identity tests)."""
        return self._request("POST", path, body, trace_id=trace_id)

    def get_raw(self, path: str) -> bytes:
        """GET and return the raw response bytes."""
        return self._request("GET", path)

    def simulate(self, body: dict) -> dict:
        """``POST /v1/simulate``; returns the parsed response object."""
        return json.loads(self.post_raw("/v1/simulate", body))

    def sweep(self, body: dict) -> dict:
        """``POST /v1/sweep``."""
        return json.loads(self.post_raw("/v1/sweep", body))

    def optimize(self, body: dict) -> dict:
        """``POST /v1/optimize``."""
        return json.loads(self.post_raw("/v1/optimize", body))

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return json.loads(self.get_raw("/healthz"))

    def stats(self) -> dict:
        """``GET /stats`` — service counters."""
        return json.loads(self.get_raw("/stats"))

    def metrics_text(self) -> str:
        """``GET /metrics`` — Prometheus text exposition."""
        return self.get_raw("/metrics").decode("utf-8")
