"""Minimal blocking client for the capacity-planning service.

A thin wrapper over :class:`http.client.HTTPConnection` (stdlib, keeps
the connection alive across requests) used by the tests, the smoke
target and the closed-loop load generator.  Each :class:`ServiceClient`
owns one socket, so N concurrent clients = N threads each holding one
connection — the classic closed-loop load model.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Iterator

__all__ = ["ServiceClient", "ServiceError"]

#: The only failures worth a transparent reconnect: the server (or an
#: idle-timeout middlebox) dropped the keep-alive connection, so the
#: request provably never started computing and a retry cannot
#: double-compute.  ``socket.timeout`` is deliberately absent — a
#: timed-out request may still be executing server-side, and silently
#: re-sending it doubles the work (and the wait); that failure belongs
#: to the caller.
_RECONNECT_ERRORS = (
    ConnectionResetError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
)


class ServiceError(RuntimeError):
    """Non-200 response from the service.

    ``retry_after`` carries the 503 ``Retry-After`` hint (seconds) when
    the admission controller shed the request, else ``None``.
    """

    def __init__(
        self, status: int, message: str, retry_after: float | None = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class ServiceClient:
    """One persistent connection to a service instance.

    ``trace_id`` stamps every request with an ``X-Repro-Trace`` header:
    the server adopts the id for its request tree (JSONL spans, the
    flight recorder) instead of minting one, so a client-side id is
    greppable end to end.  ``timing=True`` asks for the ``server_timing``
    stage breakdown in every ``/v1/*`` response.  The id the server
    actually used (inbound or minted) comes back in the response's
    ``X-Repro-Trace`` header and is kept in :attr:`last_trace_id`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8077,
        timeout: float = 60.0,
        trace_id: str | None = None,
        timing: bool = False,
    ):
        self.host = host
        self.port = port
        self.trace_id = trace_id
        self.timing = timing
        self.last_trace_id: str | None = None
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        trace_id: str | None = None,
    ) -> bytes:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        tid = trace_id or self.trace_id
        if tid:
            headers["X-Repro-Trace"] = tid
        if self.timing:
            headers["X-Repro-Timing"] = "1"
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            resp = self._conn.getresponse()
            data = resp.read()
        except _RECONNECT_ERRORS:
            # One transparent reconnect, and only for connection drops:
            # the server closed an idle keep-alive socket between
            # requests, so nothing was computed and the retry is safe.
            # Anything else (notably socket.timeout) propagates —
            # retrying a request that may still be running server-side
            # would compute it twice.
            self._conn.close()
            self._conn.request(method, path, body=payload, headers=headers)
            resp = self._conn.getresponse()
            data = resp.read()
        self.last_trace_id = resp.headers.get("X-Repro-Trace") or self.last_trace_id
        if resp.status != 200:
            try:
                message = json.loads(data).get("error", data.decode("utf-8", "replace"))
            except (ValueError, AttributeError):
                message = data.decode("utf-8", "replace")
            retry_after = resp.headers.get("Retry-After")
            raise ServiceError(
                resp.status,
                message,
                retry_after=float(retry_after) if retry_after else None,
            )
        return data

    # -- raw and typed entry points -------------------------------------------

    def post_raw(self, path: str, body: dict, trace_id: str | None = None) -> bytes:
        """POST and return the raw response bytes (byte-identity tests)."""
        return self._request("POST", path, body, trace_id=trace_id)

    def get_raw(self, path: str) -> bytes:
        """GET and return the raw response bytes."""
        return self._request("GET", path)

    def simulate(self, body: dict) -> dict:
        """``POST /v1/simulate``; returns the parsed response object."""
        return json.loads(self.post_raw("/v1/simulate", body))

    def sweep(self, body: dict) -> dict:
        """``POST /v1/sweep``."""
        return json.loads(self.post_raw("/v1/sweep", body))

    def sweep_stream(
        self, body: dict, trace_id: str | None = None
    ) -> Iterator[dict]:
        """``POST /v1/sweep`` with ``"stream": true``; yields cells.

        The server answers chunked NDJSON: a header line, then one line
        per sweep cell *as its batch group completes* — iterate to
        consume rows incrementally instead of waiting for (and holding)
        the whole grid.  Each yielded dict is one cell, byte-rendered
        identically to the buffered response's ``cells`` entries.

        Raises :class:`ServiceError` on a non-200 response, a mid-stream
        error line, or a truncated stream.  Abandoning the iterator
        early closes the connection (the remaining body is undelivered,
        so the socket cannot be reused).
        """
        payload = json.dumps({**body, "stream": True}).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        tid = trace_id or self.trace_id
        if tid:
            headers["X-Repro-Trace"] = tid
        try:
            self._conn.request("POST", "/v1/sweep", body=payload, headers=headers)
            resp = self._conn.getresponse()
        except _RECONNECT_ERRORS:
            self._conn.close()
            self._conn.request("POST", "/v1/sweep", body=payload, headers=headers)
            resp = self._conn.getresponse()
        self.last_trace_id = resp.headers.get("X-Repro-Trace") or self.last_trace_id
        if resp.status != 200:
            data = resp.read()
            try:
                message = json.loads(data).get("error", data.decode("utf-8", "replace"))
            except (ValueError, AttributeError):
                message = data.decode("utf-8", "replace")
            retry_after = resp.headers.get("Retry-After")
            raise ServiceError(
                resp.status,
                message,
                retry_after=float(retry_after) if retry_after else None,
            )
        # http.client de-chunks transparently; readline sees NDJSON.
        header = json.loads(resp.readline())
        n_cells = int(header["n_cells"])
        got = 0
        try:
            while True:
                line = resp.readline()
                if not line:
                    break
                row = json.loads(line)
                if got < n_cells and "error" in row and "status" in row:
                    raise ServiceError(int(row["status"]), str(row["error"]))
                yield row
                got += 1
            if got != n_cells:
                raise ServiceError(
                    502, f"stream truncated: {got} of {n_cells} cells"
                )
        finally:
            if got != n_cells:
                # Unconsumed body left on the wire: this socket cannot
                # carry another request.
                self._conn.close()

    def optimize(self, body: dict) -> dict:
        """``POST /v1/optimize``."""
        return json.loads(self.post_raw("/v1/optimize", body))

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return json.loads(self.get_raw("/healthz"))

    def stats(self) -> dict:
        """``GET /stats`` — service counters."""
        return json.loads(self.get_raw("/stats"))

    def metrics_text(self) -> str:
        """``GET /metrics`` — Prometheus text exposition."""
        return self.get_raw("/metrics").decode("utf-8")
