"""Minimal blocking client for the capacity-planning service.

A thin wrapper over :class:`http.client.HTTPConnection` (stdlib, keeps
the connection alive across requests) used by the tests, the smoke
target and the closed-loop load generator.  Each :class:`ServiceClient`
owns one socket, so N concurrent clients = N threads each holding one
connection — the classic closed-loop load model.
"""

from __future__ import annotations

import http.client
import json
from typing import Any

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Non-200 response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """One persistent connection to a service instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8077, timeout: float = 60.0):
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(self, method: str, path: str, body: dict | None = None) -> bytes:
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        try:
            self._conn.request(method, path, body=payload, headers=headers)
            resp = self._conn.getresponse()
            data = resp.read()
        except (http.client.HTTPException, OSError):
            # One transparent reconnect: the server may have dropped an
            # idle keep-alive connection between requests.
            self._conn.close()
            self._conn.request(method, path, body=payload, headers=headers)
            resp = self._conn.getresponse()
            data = resp.read()
        if resp.status != 200:
            try:
                message = json.loads(data).get("error", data.decode("utf-8", "replace"))
            except (ValueError, AttributeError):
                message = data.decode("utf-8", "replace")
            raise ServiceError(resp.status, message)
        return data

    # -- raw and typed entry points -------------------------------------------

    def post_raw(self, path: str, body: dict) -> bytes:
        """POST and return the raw response bytes (byte-identity tests)."""
        return self._request("POST", path, body)

    def get_raw(self, path: str) -> bytes:
        """GET and return the raw response bytes."""
        return self._request("GET", path)

    def simulate(self, body: dict) -> dict:
        """``POST /v1/simulate``; returns the parsed response object."""
        return json.loads(self.post_raw("/v1/simulate", body))

    def sweep(self, body: dict) -> dict:
        """``POST /v1/sweep``."""
        return json.loads(self.post_raw("/v1/sweep", body))

    def optimize(self, body: dict) -> dict:
        """``POST /v1/optimize``."""
        return json.loads(self.post_raw("/v1/optimize", body))

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return json.loads(self.get_raw("/healthz"))

    def stats(self) -> dict:
        """``GET /stats`` — service counters."""
        return json.loads(self.get_raw("/stats"))

    def metrics_text(self) -> str:
        """``GET /metrics`` — Prometheus text exposition."""
        return self.get_raw("/metrics").decode("utf-8")
