"""Figure 5: optimal locally-saved : I/O-saved ratios per configuration.

For *Local + I/O-Host* the optimal ratio is found empirically per
(probability of local recovery, compression factor); for *Local +
I/O-NDP* the ratio is fixed by drain bandwidth and depends only on the
compression factor (Section 6.2's observation).
"""

from __future__ import annotations

from ..compression.study import paper_factor
from ..core.configs import NO_COMPRESSION, paper_parameters
from ..core.model import ndp_io_interval
from ..core.optimizer import optimal_ratio
from .common import FIG6_APPS, ExperimentResult, TextTable, fig6_compression

__all__ = ["run", "DEFAULT_P_LOCALS"]

DEFAULT_P_LOCALS = (0.20, 0.40, 0.60, 0.80, 0.96)


def run(p_locals: tuple[float, ...] = DEFAULT_P_LOCALS) -> ExperimentResult:
    """Optimal ratios across recovery probabilities and compression factors."""
    params = paper_parameters()
    factors = {"none (0%)": 0.0}
    factors.update(
        {f"{app} ({paper_factor(app):.0%})": paper_factor(app) for app in FIG6_APPS}
    )
    factors["average (73%)"] = 0.728

    table = TextTable(
        ["compression factor"]
        + [f"Host p_local={p:.0%}" for p in p_locals]
        + ["NDP (any p_local)"]
    )
    rows = []
    for label, cf in factors.items():
        host_ratios = []
        for p in p_locals:
            pp = params.with_(p_local_recovery=p)
            comp = fig6_compression(cf, "host") if cf > 0 else NO_COMPRESSION
            host_ratios.append(optimal_ratio(pp, comp))
        ndp_comp = fig6_compression(cf, "ndp") if cf > 0 else NO_COMPRESSION
        ndp_ratio, _, _ = ndp_io_interval(params, ndp_comp)
        table.add_row([label] + host_ratios + [ndp_ratio])
        rows.append(
            {
                "factor": cf,
                "host_ratios": dict(zip(p_locals, host_ratios)),
                "ndp_ratio": ndp_ratio,
            }
        )
    note = (
        "\nHigher compression factor => cheaper I/O checkpoints => lower optimal"
        "\nratio; higher p_local => rarer I/O recoveries => higher ratio.  The NDP"
        "\nratio is bandwidth-determined and independent of p_local (one column)."
    )
    return ExperimentResult(
        experiment="figure5",
        title="Figure 5: optimal locally-saved:I/O-saved checkpoint ratios",
        rows=rows,
        text=table.render() + note,
    )
