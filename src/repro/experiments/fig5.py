"""Figure 5: optimal locally-saved : I/O-saved ratios per configuration.

For *Local + I/O-Host* the optimal ratio is found empirically per
(probability of local recovery, compression factor); for *Local +
I/O-NDP* the ratio is fixed by drain bandwidth and depends only on the
compression factor (Section 6.2's observation).

The host optima come from :func:`repro.core.sweeps.optimal_host_grid`:
one vectorized argmax over every (p_local, ratio) pair per compression
factor, instead of a bracketed scalar search per cell.  The results are
identical to the scalar :func:`repro.core.optimizer.optimal_ratio` path
(regression-tested in ``tests/experiments/test_fig45_grid.py``).
"""

from __future__ import annotations

import numpy as np

from ..compression.study import paper_factor
from ..core.configs import NO_COMPRESSION, paper_parameters
from ..core.model import ndp_io_interval
from ..core.sweeps import SweepGrid, optimal_host_grid
from .common import FIG6_APPS, ExperimentResult, TextTable, fig6_compression

__all__ = ["run", "DEFAULT_P_LOCALS"]

DEFAULT_P_LOCALS = (0.20, 0.40, 0.60, 0.80, 0.96)

#: Ratio search ceiling, matching the scalar optimizer's default bracket.
_MAX_RATIO = 2000


def run(p_locals: tuple[float, ...] = DEFAULT_P_LOCALS) -> ExperimentResult:
    """Optimal ratios across recovery probabilities and compression factors."""
    params = paper_parameters()
    factors = {"none (0%)": 0.0}
    factors.update(
        {f"{app} ({paper_factor(app):.0%})": paper_factor(app) for app in FIG6_APPS}
    )
    factors["average (73%)"] = 0.728

    grid = SweepGrid(
        mtti=params.mtti,
        checkpoint_size=params.checkpoint_size,
        local_bandwidth=params.local_bandwidth,
        io_bandwidth=params.io_bandwidth,
        p_local=np.asarray(p_locals, dtype=float),
        local_interval=params.local_interval,
        restart_overhead=params.restart_overhead,
    )
    table = TextTable(
        ["compression factor"]
        + [f"Host p_local={p:.0%}" for p in p_locals]
        + ["NDP (any p_local)"]
    )
    rows = []
    for label, cf in factors.items():
        comp = fig6_compression(cf, "host") if cf > 0 else NO_COMPRESSION
        best_ratios, _ = optimal_host_grid(grid, comp, max_ratio=_MAX_RATIO)
        host_ratios = [int(r) for r in best_ratios]
        ndp_comp = fig6_compression(cf, "ndp") if cf > 0 else NO_COMPRESSION
        ndp_ratio, _, _ = ndp_io_interval(params, ndp_comp)
        table.add_row([label] + host_ratios + [ndp_ratio])
        rows.append(
            {
                "factor": cf,
                "host_ratios": dict(zip(p_locals, host_ratios)),
                "ndp_ratio": ndp_ratio,
            }
        )
    note = (
        "\nHigher compression factor => cheaper I/O checkpoints => lower optimal"
        "\nratio; higher p_local => rarer I/O recoveries => higher ratio.  The NDP"
        "\nratio is bandwidth-determined and independent of p_local (one column)."
    )
    return ExperimentResult(
        experiment="figure5",
        title="Figure 5: optimal locally-saved:I/O-saved checkpoint ratios",
        rows=rows,
        text=table.render() + note,
    )
