"""Cluster-scale validation: shared-I/O contention vs the per-node model.

The paper (and our core model) treats global I/O as a fixed per-node share
(10 TB/s / 100k nodes = 100 MB/s).  This experiment checks that assumption
with the N-node coordinated simulation over a genuinely *shared* pipe:

1. **Share invariance** — with homogeneous nodes and fair sharing, system
   efficiency should be independent of N at fixed per-node share.
2. **Stagger** — offsetting the nodes' drain start times changes
   instantaneous contention but not throughput (processor sharing is
   insensitive to phase for symmetric loads).
3. **Recovery contention** — Section 4.2.3's rule (pause drains while a
   recovery reads from I/O) is compared against letting them contend.
"""

from __future__ import annotations

from ..core.configs import NDP_GZIP1, paper_parameters
from ..core.model import multilevel_ndp
from ..simulation.cluster import ClusterConfig, simulate_cluster
from .common import ExperimentResult, TextTable

__all__ = ["run"]


def run(
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    mttis: float = 120.0,
    seed: int = 11,
) -> ExperimentResult:
    """Run the three cluster checks."""
    params = paper_parameters()
    work = params.mtti * mttis

    table = TextTable(
        ["scenario", "nodes", "efficiency", "I/O recoveries", "pipe util"]
    )
    rows = []

    def case(label: str, **kw) -> dict:
        cfg = ClusterConfig(
            params=params, compression=NDP_GZIP1, work=work, seed=seed, **kw
        )
        res = simulate_cluster(cfg)
        table.add_row(
            [
                label,
                cfg.nodes,
                f"{res.efficiency:7.3f}",
                res.recoveries_io,
                f"{res.pipe_utilization:6.2f}",
            ]
        )
        row = {
            "scenario": label,
            "nodes": cfg.nodes,
            "efficiency": res.efficiency,
            "recoveries_io": res.recoveries_io,
            "pipe_utilization": res.pipe_utilization,
        }
        rows.append(row)
        return row

    effs = [case("share invariance", nodes=n)["efficiency"] for n in node_counts]
    case("staggered drains", nodes=8, stagger=True)
    case("recovery contends with drains", nodes=8, pause_drains_on_recovery=False)

    model = multilevel_ndp(
        params, NDP_GZIP1, rerun_accounting="staleness", pause_during_local=False
    ).efficiency
    spread = max(effs) - min(effs)
    note = (
        f"\nPer-node analytic model (no drain pause): {model:.3f}"
        f"\nEfficiency spread across node counts: {spread:.3f} — the per-node"
        "\nI/O-share assumption behind the paper's model holds under fair"
        "\nsharing with homogeneous nodes."
    )
    return ExperimentResult(
        experiment="ablation-cluster",
        title="Cluster-scale shared-I/O validation of the per-node model",
        rows=rows,
        text=table.render() + note,
        headline={"efficiency_spread": spread, "per_node_model": model},
    )
