"""Extension: the value of the partner level (unbundling p_local).

The paper folds local- and partner-level recoveries into one
``p_local_recovery`` knob, citing Moody et al.'s observation that
local+partner covers 85% of failures.  The simulator can model the partner
level explicitly — a blocking interconnect copy per ``partner_every``
checkpoints, plus a local -> partner -> I/O recovery cascade — so this
experiment quantifies what the partner copies buy and what they cost.

Setup: node-level recovery succeeds with probability ``p_local`` (0.70
here — worse than the paper's default, making the partner level matter);
when it fails, the partner copy is usable with probability 0.8.  Runs on
the fast engine, whose closed-form partner charging is matched-seed
exact against the DES.
"""

from __future__ import annotations

from ..core.configs import NDP_GZIP1, paper_parameters
from ..simulation import SimConfig, default_work, simulate
from .common import ExperimentResult, TextTable

__all__ = ["run"]


def run(
    partner_everies: tuple[int, ...] = (0, 4, 2, 1),
    p_local: float = 0.70,
    p_partner: float = 0.80,
    mttis: float = 150.0,
    seed: int = 13,
) -> ExperimentResult:
    """NDP-mode efficiency and recovery mix vs partner-copy cadence."""
    params = paper_parameters().with_(p_local_recovery=p_local)
    work = default_work(params, mttis)
    table = TextTable(
        [
            "partner cadence",
            "efficiency",
            "recoveries local/partner/I/O",
            "partner copies",
            "ckpt overhead",
        ]
    )
    rows = []
    for every in partner_everies:
        res = simulate(
            SimConfig(
                params=params,
                strategy="ndp",
                compression=NDP_GZIP1,
                work=work,
                seed=seed,
                partner_every=every,
                p_partner_recovery=p_partner if every else 0.0,
                engine="fast",
            )
        )
        label = "none" if every == 0 else f"every {every}"
        table.add_row(
            [
                label,
                f"{res.efficiency:7.3f}",
                f"{res.recoveries_local}/{res.recoveries_partner}/{res.recoveries_io}",
                res.partner_checkpoints,
                f"{res.breakdown.checkpoint_local:6.2%}",
            ]
        )
        rows.append(
            {
                "partner_every": every,
                "efficiency": res.efficiency,
                "recoveries_io": res.recoveries_io,
                "recoveries_partner": res.recoveries_partner,
            }
        )
    base = rows[0]["efficiency"]
    best = max(r["efficiency"] for r in rows)
    note = (
        f"\nPartner copies cost ~{params.checkpoint_size / 50e9:.1f}s of interconnect"
        "\ntime per cadence point but convert expensive I/O recoveries into cheap"
        f"\npartner recoveries: efficiency {base:.1%} -> {best:.1%} at this"
        f"\n(p_local={p_local:.0%}) operating point."
    )
    return ExperimentResult(
        experiment="ablation-partner",
        title="Extension: explicit partner level (local -> partner -> I/O cascade)",
        rows=rows,
        text=table.render() + note,
        headline={"gain": best - base},
    )
