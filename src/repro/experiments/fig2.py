"""Figure 2: the compute-node hardware organization, annotated.

Figure 2 is an architecture diagram, not data — but its annotations *are*
data: bandwidths, core counts, and capacities all come from the projection
and the NDP sizing analysis.  This experiment renders the organization as
ASCII with every annotation derived live, so a parameter change (different
codec, different NVM) redraws the right numbers.
"""

from __future__ import annotations

from ..compression.study import PAPER_UTILITY_AVERAGES
from ..core.configs import paper_parameters
from ..core.model import ndp_io_interval
from ..core.ndp_sizing import size_ndp
from ..core.projection import EXASCALE
from .common import ExperimentResult

__all__ = ["run"]


def run(utility: str = "gzip(1)") -> ExperimentResult:
    """Render the NDP compute-node organization for a chosen codec."""
    params = paper_parameters()
    factor, speed = PAPER_UTILITY_AVERAGES[utility]
    sizing = size_ndp(utility, factor, speed, params)
    spec = sizing.as_spec(decompress_rate=16e9)
    n, interval, _ = ndp_io_interval(params, spec)

    ndp_line1 = f"{sizing.cores} x {utility} core(s)".ljust(25)
    ndp_line2 = f"{spec.compress_rate / 1e6:.1f} MB/s compress".ljust(25)
    dram = f"DRAM {EXASCALE.node_memory_bytes / 1e9:.0f} GB".ljust(16)
    ckpt = f"ckpt {params.checkpoint_size / 1e9:.0f} GB".ljust(16)
    nvm_bw = f"{params.local_bandwidth / 1e9:.1f} GB/s".ljust(11)
    dl = f"delta_L = {params.local_commit_time:.2f} s".ljust(25)
    nic = f"NIC {EXASCALE.interconnect_bw / 1e9:.0f} GB/s".ljust(14)
    diagram = f"""
+----------------------------- compute node ------------------------------+
|                                                                         |
|  +--------------------+        point-to-point links                     |
|  |  HOST CPU          |====================================+            |
|  |  64 cores          |                                    |            |
|  |  10 Tflop/s        |    +---------------------------+   |            |
|  +---------+----------+    |  NVM-attached NDP         |   |            |
|            |               |  {ndp_line1}|   |            |
|  +---------+----------+    |  {ndp_line2}|   |            |
|  |  {dram}  |    +-------------+-------------+   |            |
|  |  {ckpt}  |                  |                 |            |
|  +---------+----------+    +-------------+-------------+   |            |
|            | {nvm_bw} |  local NVM (circular buf) |   |            |
|            +===============+  {dl}|   |            |
|                            +---------------------------+   |            |
|                                                            |            |
|  +------------------+                                      |            |
|  |  {nic}  +======================================+            |
|  +--------+---------+                                                   |
+-----------|--------------------------------------------------------------+
            | {params.io_bandwidth / 1e6:.0f} MB/s per-node share of {EXASCALE.io_bandwidth / 1e12:.0f} TB/s global I/O
            v
   [ I/O nodes / parallel file system ]

operation (Section 4.2): host writes every checkpoint to NVM ({params.local_commit_time:.1f} s,
blocking); the NDP locks the newest, compresses at {spec.compress_rate / 1e6:.0f} MB/s
(factor {factor:.0%}) overlapped with the NIC stream, completing one I/O-level
checkpoint every {interval:.0f} s (= every {n} local checkpoints) without
interrupting the host.
"""
    return ExperimentResult(
        experiment="figure2",
        title=f"Figure 2: compute-node organization with NDP ({utility})",
        rows=[
            {
                "utility": utility,
                "ndp_cores": sizing.cores,
                "compress_rate": spec.compress_rate,
                "io_interval": interval,
                "drain_ratio": n,
            }
        ],
        text=diagram.strip("\n"),
        headline={"ndp_cores": float(sizing.cores), "io_interval": interval},
    )
