"""Figure 1: progress rate of a C/R system as a function of M/delta."""

from __future__ import annotations

import numpy as np

from ..core.daly import efficiency_vs_m_over_delta
from .common import ExperimentResult, TextTable

__all__ = ["run"]

#: The paper's qualitative anchors: ~90% progress needs M/delta ~ 200.
PAPER_REFERENCE = {"m_over_delta_for_90pct": 200.0}


def run(points: int = 25, lo: float = 1.0, hi: float = 1e4) -> ExperimentResult:
    """Sweep M/delta logarithmically and report Daly-optimal efficiency.

    Reproduces the shape of Figure 1: efficiency rises steeply with
    M/delta and saturates toward 1; ~200 is needed for 90%.
    """
    ratios = np.logspace(np.log10(lo), np.log10(hi), points)
    effs = efficiency_vs_m_over_delta(ratios)
    table = TextTable(["M/delta", "progress rate"])
    rows = []
    for r, e in zip(ratios, effs):
        table.add_row([f"{r:10.1f}", f"{e:8.4f}"])
        rows.append({"m_over_delta": float(r), "efficiency": float(e)})
    # Where does the curve cross 90%?
    crossing = float(np.interp(0.9, effs, ratios))
    return ExperimentResult(
        experiment="figure1",
        title="Figure 1: progress rate vs M/delta (Daly-optimal interval)",
        rows=rows,
        text=table.render() + f"\n90% progress rate requires M/delta ~ {crossing:.0f}",
        headline={"m_over_delta_for_90pct": crossing},
    )
