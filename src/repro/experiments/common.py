"""Shared infrastructure for the per-table / per-figure experiment modules.

Every experiment module exposes ``run(...) -> ExperimentResult``; the
result carries structured rows plus a plain-text rendering so the same
code path feeds the benchmark harness, the CLI, and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.configs import (
    HOST_GZIP1,
    NDP_GZIP1,
    NO_COMPRESSION,
    CompressionSpec,
    CRParameters,
    paper_parameters,
)
from ..core.model import ModelResult, multilevel_ndp
from ..core.optimizer import optimal_host
from ..simulation import SimConfig

__all__ = [
    "TextTable",
    "ExperimentResult",
    "SENSITIVITY_CONFIGS",
    "sensitivity_result",
    "sensitivity_sim_config",
    "FIG6_APPS",
    "fig6_compression",
]


class TextTable:
    """Minimal fixed-width text-table formatter.

    >>> t = TextTable(["a", "b"])
    >>> t.add_row([1, 2.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    a | b
    --+----
    1 | 2.5
    """

    def __init__(self, headers: Sequence[str]):
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        """Append one row; cells are str()-ed (format floats yourself)."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} cells, got {len(row)}")
        self.rows.append(row)

    def render(self) -> str:
        """The formatted table."""
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows)) if self.rows else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
        sep = "-+-".join("-" * w for w in widths)
        return "\n".join([fmt(self.headers), sep] + [fmt(r) for r in self.rows])


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment:
        Identifier matching DESIGN.md's index, e.g. ``"figure6"``.
    title:
        Human-readable description.
    rows:
        Structured data, one dict per row/series point.
    text:
        Rendered text table(s), printable as-is.
    headline:
        Key scalar takeaways, e.g. ``{"avg_host_compression": 0.52}``.
    """

    experiment: str
    title: str
    rows: list[dict] = field(default_factory=list)
    text: str = ""
    headline: dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"== {self.title} ==\n{self.text}"


#: The five configurations of the Figure 8/9 sensitivity studies:
#: label -> (local bandwidth GB/s, mode, compression).  Compression factor
#: is the 73% seven-app average; host compresses at 640 MB/s on 64 cores,
#: NDP at 440.4 MB/s on 4 cores.
SENSITIVITY_CONFIGS: dict[str, tuple[float, str, CompressionSpec]] = {
    "L-15GBps + I/O-HC": (15e9, "host", HOST_GZIP1),
    "L-15GBps + I/O-N": (15e9, "ndp", NO_COMPRESSION),
    "L-15GBps + I/O-NC": (15e9, "ndp", NDP_GZIP1),
    "L-2GBps + I/O-N": (2e9, "ndp", NO_COMPRESSION),
    "L-2GBps + I/O-NC": (2e9, "ndp", NDP_GZIP1),
}


def sensitivity_result(
    label: str, params: CRParameters, rerun_accounting: str = "paper"
) -> ModelResult:
    """Evaluate one of the :data:`SENSITIVITY_CONFIGS` at given parameters.

    The local checkpoint interval is re-optimized (Daly) per
    configuration, since a 2 GB/s NVM implies a very different
    ``delta_L`` than 15 GB/s.
    """
    bw, mode, compression = SENSITIVITY_CONFIGS[label]
    p = params.with_(local_bandwidth=bw, local_interval=None)
    if mode == "host":
        return optimal_host(p, compression, rerun_accounting)
    return multilevel_ndp(p, compression, rerun_accounting)


def sensitivity_sim_config(
    label: str, params: CRParameters, work: float
) -> SimConfig:
    """The simulator config mirroring :func:`sensitivity_result`.

    Same parameter substitution (local bandwidth from the label, Daly
    interval); host modes carry the analytically optimal I/O ratio so
    the simulation validates the same operating point the model reports.
    """
    bw, mode, compression = SENSITIVITY_CONFIGS[label]
    p = params.with_(local_bandwidth=bw, local_interval=None)
    if mode == "host":
        ratio = optimal_host(p, compression).ratio
        return SimConfig(
            params=p, strategy="host", ratio=ratio, compression=compression, work=work
        )
    return SimConfig(params=p, strategy="ndp", compression=compression, work=work)


#: The three mini-apps Figure 6 shows individually (plus the average).
FIG6_APPS = ("CoMD", "miniFE", "miniSMAC2D")


def fig6_compression(factor: float, engine: str) -> CompressionSpec:
    """A compression spec with a mini-app-specific factor.

    ``engine`` selects the rate profile: ``"host"`` (64 cores x 10 MB/s)
    or ``"ndp"`` (4 gzip(1) cores).
    """
    base = HOST_GZIP1 if engine == "host" else NDP_GZIP1
    return base.with_factor(factor)


def paper_defaults() -> CRParameters:
    """Alias for :func:`repro.core.configs.paper_parameters`."""
    return paper_parameters()
