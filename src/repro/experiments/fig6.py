"""Figure 6: progress-rate comparison across C/R configurations.

For three representative mini-apps (and the seven-app average compression
factor) and four probabilities of local recovery, evaluates:

* I/O Only (with and without compression),
* Local + I/O-Host (optimal ratio; with and without compression),
* Local + I/O-NDP (with and without compression).

The paper's headline lives here: averaged over p_local in {20,40,60,80}%,
multilevel+compression improves from ~51% (host) to ~78% (NDP).
"""

from __future__ import annotations

from ..compression.study import paper_factor
from ..core.configs import NO_COMPRESSION, paper_parameters
from ..core.model import io_only, multilevel_ndp
from ..core.optimizer import optimal_host
from ..simulation import ResultCache, SimConfig, default_work, simulate_grid
from .common import FIG6_APPS, ExperimentResult, TextTable, fig6_compression

__all__ = ["run", "sim_configs", "DEFAULT_P_LOCALS"]

DEFAULT_P_LOCALS = (0.20, 0.40, 0.60, 0.80)

#: The paper's Section 6.3 headline numbers.
PAPER_REFERENCE = {"avg_host_compression": 0.51, "avg_ndp_compression": 0.78}


def _cases() -> dict[str, float]:
    cases = {app: paper_factor(app) for app in FIG6_APPS}
    cases["average"] = 0.728
    return cases


def sim_configs(
    p_locals: tuple[float, ...] = DEFAULT_P_LOCALS, mttis: float = 50.0
):
    """Every Figure 6 bar as a simulator config.

    Shape (rows x apps), matching :func:`run`'s row order: I/O Only
    (plain, compressed), then per ``p_local`` the host/NDP multilevel
    pairs.  Host bars carry the analytically optimal ratio so the
    simulation validates the operating point the model reports.
    """
    params = paper_parameters()
    work = default_work(params, mttis)
    cases = _cases()

    def per_case(build):
        return [build(cf) for cf in cases.values()]

    grid = [
        per_case(
            lambda cf: SimConfig(
                params=params, strategy="io-only", compression=NO_COMPRESSION, work=work
            )
        ),
        per_case(
            lambda cf: SimConfig(
                params=params,
                strategy="io-only",
                compression=fig6_compression(cf, "host"),
                work=work,
            )
        ),
    ]
    for p in p_locals:
        pp = params.with_(p_local_recovery=p)
        grid.append(
            per_case(
                lambda cf, pp=pp: SimConfig(
                    params=pp,
                    strategy="host",
                    ratio=optimal_host(pp, NO_COMPRESSION).ratio,
                    compression=NO_COMPRESSION,
                    work=work,
                )
            )
        )
        grid.append(
            per_case(
                lambda cf, pp=pp: SimConfig(
                    params=pp,
                    strategy="host",
                    ratio=optimal_host(pp, fig6_compression(cf, "host")).ratio,
                    compression=fig6_compression(cf, "host"),
                    work=work,
                )
            )
        )
        grid.append(
            per_case(
                lambda cf, pp=pp: SimConfig(
                    params=pp, strategy="ndp", compression=NO_COMPRESSION, work=work
                )
            )
        )
        grid.append(
            per_case(
                lambda cf, pp=pp: SimConfig(
                    params=pp,
                    strategy="ndp",
                    compression=fig6_compression(cf, "ndp"),
                    work=work,
                )
            )
        )
    return grid


def run(
    p_locals: tuple[float, ...] = DEFAULT_P_LOCALS,
    simulate_seeds: int = 0,
    simulate_mttis: float = 50.0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> ExperimentResult:
    """Evaluate every Figure 6 bar; returns per-app and average results."""
    params = paper_parameters()
    cases = _cases()

    table = TextTable(
        ["config"] + [f"{app} ({cf:.0%})" for app, cf in cases.items()]
    )
    rows = []

    def add(config: str, evaluate) -> None:
        effs = {app: evaluate(cf) for app, cf in cases.items()}
        table.add_row([config] + [f"{e:6.1%}" for e in effs.values()])
        rows.append({"config": config, **effs})

    add("I/O Only", lambda cf: io_only(params).efficiency)
    add(
        "I/O Only + compression",
        lambda cf: io_only(params, fig6_compression(cf, "host")).efficiency,
    )
    for p in p_locals:
        pp = params.with_(p_local_recovery=p)
        add(
            f"Local({p:.0%}) + I/O-Host",
            lambda cf, pp=pp: optimal_host(pp, NO_COMPRESSION).efficiency,
        )
        add(
            f"Local({p:.0%}) + I/O-Host + comp",
            lambda cf, pp=pp: optimal_host(pp, fig6_compression(cf, "host")).efficiency,
        )
        add(
            f"Local({p:.0%}) + I/O-NDP",
            lambda cf, pp=pp: multilevel_ndp(pp, NO_COMPRESSION).efficiency,
        )
        add(
            f"Local({p:.0%}) + I/O-NDP + comp",
            lambda cf, pp=pp: multilevel_ndp(pp, fig6_compression(cf, "ndp")).efficiency,
        )

    # The Section 6.3 averages (over p_locals, at the average factor).
    host_avg = sum(
        optimal_host(
            params.with_(p_local_recovery=p), fig6_compression(0.728, "host")
        ).efficiency
        for p in p_locals
    ) / len(p_locals)
    ndp_avg = sum(
        multilevel_ndp(
            params.with_(p_local_recovery=p), fig6_compression(0.728, "ndp")
        ).efficiency
        for p in p_locals
    ) / len(p_locals)
    note = (
        f"\nSection 6.3 headline (avg over p_local {[f'{p:.0%}' for p in p_locals]}, CF 73%):"
        f"\n  multilevel + compression (host): {host_avg:6.1%}   (paper: 51%)"
        f"\n  multilevel + compression (NDP) : {ndp_avg:6.1%}   (paper: 78%)"
        f"\n  speedup from NDP offload       : {ndp_avg / host_avg - 1:6.1%}"
    )
    text = table.render() + note
    if simulate_seeds:
        grid = simulate_grid(
            sim_configs(p_locals, simulate_mttis),
            seeds=range(simulate_seeds),
            jobs=jobs,
            cache=cache,
        )
        sim_table = TextTable(
            ["config"] + [f"{app} ({cf:.0%})" for app, cf in cases.items()]
        )
        for i, row in enumerate(rows):
            for j, app in enumerate(cases):
                row[f"sim_{app}"] = float(grid.efficiency[i, j])
            sim_table.add_row(
                [row["config"]]
                + [f"{grid.efficiency[i, j]:6.1%}" for j in range(len(cases))]
            )
        text += (
            f"\n\nSimulated (fast engine, {simulate_seeds} seeds x "
            f"{simulate_mttis:.0f} MTTIs per cell):\n" + sim_table.render()
        )
    return ExperimentResult(
        experiment="figure6",
        title="Figure 6: progress-rate comparison across C/R configurations",
        rows=rows,
        text=text,
        headline={"avg_host_compression": host_avg, "avg_ndp_compression": ndp_avg},
    )
