"""Figure 6: progress-rate comparison across C/R configurations.

For three representative mini-apps (and the seven-app average compression
factor) and four probabilities of local recovery, evaluates:

* I/O Only (with and without compression),
* Local + I/O-Host (optimal ratio; with and without compression),
* Local + I/O-NDP (with and without compression).

The paper's headline lives here: averaged over p_local in {20,40,60,80}%,
multilevel+compression improves from ~51% (host) to ~78% (NDP).
"""

from __future__ import annotations

from ..compression.study import paper_factor
from ..core.configs import NO_COMPRESSION, paper_parameters
from ..core.model import io_only, multilevel_ndp
from ..core.optimizer import optimal_host
from .common import FIG6_APPS, ExperimentResult, TextTable, fig6_compression

__all__ = ["run", "DEFAULT_P_LOCALS"]

DEFAULT_P_LOCALS = (0.20, 0.40, 0.60, 0.80)

#: The paper's Section 6.3 headline numbers.
PAPER_REFERENCE = {"avg_host_compression": 0.51, "avg_ndp_compression": 0.78}


def run(p_locals: tuple[float, ...] = DEFAULT_P_LOCALS) -> ExperimentResult:
    """Evaluate every Figure 6 bar; returns per-app and average results."""
    params = paper_parameters()
    cases = {app: paper_factor(app) for app in FIG6_APPS}
    cases["average"] = 0.728

    table = TextTable(
        ["config"] + [f"{app} ({cf:.0%})" for app, cf in cases.items()]
    )
    rows = []

    def add(config: str, evaluate) -> None:
        effs = {app: evaluate(cf) for app, cf in cases.items()}
        table.add_row([config] + [f"{e:6.1%}" for e in effs.values()])
        rows.append({"config": config, **effs})

    add("I/O Only", lambda cf: io_only(params).efficiency)
    add(
        "I/O Only + compression",
        lambda cf: io_only(params, fig6_compression(cf, "host")).efficiency,
    )
    for p in p_locals:
        pp = params.with_(p_local_recovery=p)
        add(
            f"Local({p:.0%}) + I/O-Host",
            lambda cf, pp=pp: optimal_host(pp, NO_COMPRESSION).efficiency,
        )
        add(
            f"Local({p:.0%}) + I/O-Host + comp",
            lambda cf, pp=pp: optimal_host(pp, fig6_compression(cf, "host")).efficiency,
        )
        add(
            f"Local({p:.0%}) + I/O-NDP",
            lambda cf, pp=pp: multilevel_ndp(pp, NO_COMPRESSION).efficiency,
        )
        add(
            f"Local({p:.0%}) + I/O-NDP + comp",
            lambda cf, pp=pp: multilevel_ndp(pp, fig6_compression(cf, "ndp")).efficiency,
        )

    # The Section 6.3 averages (over p_locals, at the average factor).
    host_avg = sum(
        optimal_host(
            params.with_(p_local_recovery=p), fig6_compression(0.728, "host")
        ).efficiency
        for p in p_locals
    ) / len(p_locals)
    ndp_avg = sum(
        multilevel_ndp(
            params.with_(p_local_recovery=p), fig6_compression(0.728, "ndp")
        ).efficiency
        for p in p_locals
    ) / len(p_locals)
    note = (
        f"\nSection 6.3 headline (avg over p_local {[f'{p:.0%}' for p in p_locals]}, CF 73%):"
        f"\n  multilevel + compression (host): {host_avg:6.1%}   (paper: 51%)"
        f"\n  multilevel + compression (NDP) : {ndp_avg:6.1%}   (paper: 78%)"
        f"\n  speedup from NDP offload       : {ndp_avg / host_avg - 1:6.1%}"
    )
    return ExperimentResult(
        experiment="figure6",
        title="Figure 6: progress-rate comparison across C/R configurations",
        rows=rows,
        text=table.render() + note,
        headline={"avg_host_compression": host_avg, "avg_ndp_compression": ndp_avg},
    )
