"""Ablation studies on the design choices DESIGN.md calls out.

* :func:`rerun_accounting` — paper-mode vs staleness-aware Rerun-I/O
  accounting across the main configurations: quantifies how much of the
  reported efficiency depends on that modeling choice.
* :func:`daly_order` — first-order (Young) vs higher-order (Daly) optimal
  interval: effect on single-level efficiency across the M/delta range.
* :func:`delta_compression` — the paper's future-work idea: XOR-delta +
  dedup between consecutive checkpoints of the proxy apps, and the model
  efficiency NDP would reach at the resulting effective factors.
* :func:`ndp_pause` — effect of the Section 4.2.1 rule that the NDP drain
  pauses during host NVM writes.
"""

from __future__ import annotations

import zlib

from ..compression.delta import BlockDeduper, xor_delta
from ..core.configs import NDP_GZIP1, NO_COMPRESSION, paper_parameters
from ..core.daly import optimal_efficiency
from ..core.model import multilevel_ndp
from ..core.optimizer import optimal_host
from ..workloads.generator import rank_apps
from .common import ExperimentResult, TextTable, fig6_compression

__all__ = ["rerun_accounting", "daly_order", "delta_compression", "ndp_pause"]


def rerun_accounting() -> ExperimentResult:
    """Paper vs staleness Rerun-I/O accounting on the Figure 7 matrix."""
    params = paper_parameters().with_(p_local_recovery=0.96)
    cases = {
        "Host + comp": lambda acc: optimal_host(
            params, fig6_compression(0.728, "host"), rerun_accounting=acc
        ),
        "NDP no comp": lambda acc: multilevel_ndp(
            params, NO_COMPRESSION, rerun_accounting=acc
        ),
        "NDP + comp": lambda acc: multilevel_ndp(
            params, NDP_GZIP1, rerun_accounting=acc
        ),
    }
    table = TextTable(["config", "paper eff", "staleness eff", "delta"])
    rows = []
    for label, fn in cases.items():
        e_paper = fn("paper").efficiency
        e_stale = fn("staleness").efficiency
        table.add_row(
            [label, f"{e_paper:7.3f}", f"{e_stale:7.3f}", f"{e_paper - e_stale:+7.3f}"]
        )
        rows.append({"config": label, "paper": e_paper, "staleness": e_stale})
    note = (
        "\nThe staleness accounting additionally charges the commit/drain lag of"
        "\nI/O snapshots; it lowers efficiency most where I/O recoveries are"
        "\nexpensive, but does not change any ranking."
    )
    return ExperimentResult(
        experiment="ablation-rerun",
        title="Ablation: Rerun-I/O accounting (paper vs staleness-aware)",
        rows=rows,
        text=table.render() + note,
    )


def daly_order() -> ExperimentResult:
    """Young vs Daly optimal-interval estimate across M/delta."""
    table = TextTable(["M/delta", "eff @ Young tau", "eff @ Daly tau", "gain"])
    rows = []
    for ratio in (2.0, 5.0, 10.0, 50.0, 200.0, 1000.0):
        e_young = float(optimal_efficiency(1.0, ratio, order="young"))
        e_daly = float(optimal_efficiency(1.0, ratio, order="daly"))
        table.add_row(
            [f"{ratio:7.0f}", f"{e_young:8.4f}", f"{e_daly:8.4f}", f"{e_daly - e_young:+8.4f}"]
        )
        rows.append({"m_over_delta": ratio, "young": e_young, "daly": e_daly})
    note = (
        "\nThe higher-order estimate only matters in the interrupt-dominated"
        "\nregime (small M/delta) — exactly where the I/O-Only baseline sits."
    )
    return ExperimentResult(
        experiment="ablation-daly",
        title="Ablation: first-order vs higher-order optimal interval",
        rows=rows,
        text=table.render() + note,
    )


def delta_compression(
    apps: tuple[str, ...] = ("HPCCG", "miniSMAC2D", "CoMD"),
    steps_between: int = 2,
) -> ExperimentResult:
    """Future work: consecutive-checkpoint delta/dedup on the NDP.

    For each proxy app, takes two *full-precision* checkpoints
    ``steps_between`` steps apart (delta encoding operates on raw state;
    the calibration quantization would hide its effect by making unchanged
    arrays trivially compressible) and measures (a) gzip(1) on the raw
    second checkpoint, (b) gzip(1) on its XOR delta against the first, and
    (c) 4 KiB block dedup.  Then reports the NDP-model efficiency at the
    achieved effective factors.

    Delta encoding shines where part of the state is static between
    checkpoints (solver operands, mesh/coefficient data); MD state, whose
    every mantissa bit churns each step, shows little gain — exactly the
    application-dependence the paper's conclusion anticipates.
    """
    params = paper_parameters()
    table = TextTable(
        ["app", "gzip(1) raw", "gzip(1) of XOR-delta", "4K dedup", "NDP eff raw", "NDP eff delta"]
    )
    rows = []
    for name in apps:
        app = rank_apps(name, ranks=1, seed=3, warmup_steps=4, calibrated=False)[0]
        first = app.checkpoint_bytes()
        app.run(steps_between)
        second = app.checkpoint_bytes()
        raw_factor = 1.0 - len(zlib.compress(second, 1)) / len(second)
        delta = xor_delta(first, second)
        delta_factor = 1.0 - len(zlib.compress(delta, 1)) / len(delta)
        deduper = BlockDeduper(4096)
        deduper.push(first)
        dedup_factor = deduper.push(second).dedup_factor
        eff_raw = multilevel_ndp(params, NDP_GZIP1.with_factor(max(raw_factor, 0.0))).efficiency
        eff_delta = multilevel_ndp(
            params, NDP_GZIP1.with_factor(max(delta_factor, 0.0))
        ).efficiency
        table.add_row(
            [
                name,
                f"{raw_factor:6.1%}",
                f"{delta_factor:6.1%}",
                f"{dedup_factor:6.1%}",
                f"{eff_raw:6.1%}",
                f"{eff_delta:6.1%}",
            ]
        )
        rows.append(
            {
                "app": name,
                "raw_factor": raw_factor,
                "delta_factor": delta_factor,
                "dedup_factor": dedup_factor,
            }
        )
    note = (
        "\nXOR-delta against the previous checkpoint raises the effective factor"
        "\nwherever state evolves slowly — the headroom the paper's conclusion"
        "\npoints at for future NDP optimizations."
    )
    return ExperimentResult(
        experiment="ablation-delta",
        title="Ablation/extension: consecutive-checkpoint delta & dedup on NDP",
        rows=rows,
        text=table.render() + note,
    )


def ndp_pause() -> ExperimentResult:
    """Effect of pausing the NDP drain during host NVM writes."""
    params = paper_parameters()
    table = TextTable(["compression", "eff (pause)", "eff (no pause)", "I/O interval pause/no-pause"])
    rows = []
    for comp, label in ((NO_COMPRESSION, "none"), (NDP_GZIP1, "gzip(1)")):
        with_pause = multilevel_ndp(params, comp, pause_during_local=True)
        without = multilevel_ndp(params, comp, pause_during_local=False)
        table.add_row(
            [
                label,
                f"{with_pause.efficiency:7.3f}",
                f"{without.efficiency:7.3f}",
                f"{with_pause.io_interval:6.0f}s / {without.io_interval:6.0f}s",
            ]
        )
        rows.append(
            {
                "compression": label,
                "pause": with_pause.efficiency,
                "no_pause": without.efficiency,
            }
        )
    note = (
        "\nThe pause costs the drain ~5% of wall time (delta_L / cycle), visible"
        "\nonly through a slightly longer I/O checkpoint interval."
    )
    return ExperimentResult(
        experiment="ablation-ndp-pause",
        title="Ablation: NDP drain pause during host NVM writes",
        rows=rows,
        text=table.render() + note,
    )
