"""Table 4: the C/R parameters used by the evaluation — derived, not typed.

Table 4 lists the model inputs; almost every row is *derived* from Table 1
plus the compression study, so this experiment re-derives each one and
shows its provenance (the one free choice — the 150 s local interval — is
checked against Daly's estimate it was rounded from).
"""

from __future__ import annotations

from ..core import daly
from ..core.configs import NDP_GZIP1, paper_parameters
from ..core.projection import EXASCALE
from ..compression.study import PAPER_UTILITY_AVERAGES
from .common import ExperimentResult, TextTable

__all__ = ["run"]


def run() -> ExperimentResult:
    """Regenerate Table 4 with provenance per row."""
    p = paper_parameters()
    gzip1_speed = PAPER_UTILITY_AVERAGES["gzip(1)"][1]
    daly_tau = float(daly.daly_interval(p.local_commit_time, p.mtti))

    rows = [
        ("System MTTI", "30 minutes", f"{p.mtti / 60:.0f} minutes",
         "Table 1 (5-year socket MTTF over 100k nodes, rounded up)"),
        ("Checkpoint size", "112 GB/node", f"{p.checkpoint_size / 1e9:.0f} GB/node",
         "80% of the 140 GB node memory"),
        ("Compute local NVM BW", "15.0 GB/s", f"{p.local_bandwidth / 1e9:.1f} GB/s",
         "PCIe-3-feasible; above the 12.4 GB/s the 90% target needs"),
        ("Checkpoint interval (local)", "150 s", f"{p.local_interval:.0f} s",
         f"Daly optimum {daly_tau:.0f} s for delta_L={p.local_commit_time:.1f} s, rounded"),
        ("Probability of recovery from local", "20% - 96%", "20% - 96%",
         "swept; Moody et al. observed 85%, improvable to 96%"),
        ("Compression factor", "mini-app specific", "Table 2 gzip(1) column",
         "73% seven-app average"),
        ("Compression rate (4-core NDP)", "440.4 MB/s",
         f"{4 * gzip1_speed / 1e6:.1f} MB/s", "4 x 110.1 MB/s gzip(1) threads"),
        ("Decompression rate (64-core host)", "16.0 GB/s",
         f"{NDP_GZIP1.decompress_rate / 1e9:.1f} GB/s",
         "64 x 350 MB/s observed, conservatively derated from 22.4"),
        ("Per-node I/O share", "100 MB/s",
         f"{EXASCALE.io_bandwidth_per_node / 1e6:.0f} MB/s",
         "10 TB/s system I/O over 100k nodes (implied)"),
    ]
    table = TextTable(["parameter", "paper", "derived here", "provenance"])
    out_rows = []
    for name, paper_val, derived, why in rows:
        table.add_row([name, paper_val, derived, why])
        out_rows.append(
            {"parameter": name, "paper": paper_val, "derived": derived, "provenance": why}
        )
    return ExperimentResult(
        experiment="table4",
        title="Table 4: evaluation parameters, re-derived with provenance",
        rows=out_rows,
        text=table.render(),
        headline={"daly_tau": daly_tau, "ndp_rate_mbps": 4 * gzip1_speed / 1e6},
    )
