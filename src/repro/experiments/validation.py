"""Model-vs-simulation cross-validation (fidelity evidence).

Runs the discrete-event simulator and the analytic model (staleness rerun
accounting — the one matching the simulator's semantics) over a matrix of
configurations and reports efficiencies side by side.  Agreement within a
few points of Monte-Carlo noise is the evidence that the analytic model —
the artifact behind every figure — faithfully captures the operational
rules of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.configs import NDP_GZIP1, NO_COMPRESSION, CompressionSpec, CRParameters, paper_parameters
from ..core.model import ModelResult, multilevel_host, multilevel_ndp
from ..simulation import SimConfig, default_work, run_simulations
from ..simulation.pool import ResultCache
from .common import ExperimentResult, TextTable

__all__ = ["run", "ValidationCase"]


@dataclass(frozen=True)
class ValidationCase:
    """One model-vs-sim comparison point.

    ``regime`` distinguishes the paper's operating points (``"paper"`` —
    high probability of local recovery, where the expected-value model is
    accurate) from recovery-dominated stress points (``"extreme"`` —
    there the model is *conservative*: failures land during long reruns
    and the simulator's host re-checkpoints along the way, so consecutive
    failures roll back less than the model charges).
    """

    label: str
    strategy: str
    ratio: int
    compression: CompressionSpec
    p_local: float
    regime: str = "paper"


DEFAULT_CASES = (
    ValidationCase("NDP, no comp, p=85%", "ndp", 1, NO_COMPRESSION, 0.85),
    ValidationCase("NDP + gzip(1), p=85%", "ndp", 1, NDP_GZIP1, 0.85),
    ValidationCase("NDP + gzip(1), p=96%", "ndp", 1, NDP_GZIP1, 0.96),
    ValidationCase("Host r=15 + gzip(1), p=85%", "host", 15, NDP_GZIP1, 0.85),
    ValidationCase("Host r=40, no comp, p=85%", "host", 40, NO_COMPRESSION, 0.85, "extreme"),
    ValidationCase("NDP, no comp, p=50%", "ndp", 1, NO_COMPRESSION, 0.50, "extreme"),
)


def run(
    cases: tuple[ValidationCase, ...] = DEFAULT_CASES,
    mttis: float = 150.0,
    seed: int = 7,
    params: CRParameters | None = None,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    engine: str = "fast",
) -> ExperimentResult:
    """Compare simulated and modeled efficiency for each case.

    ``mttis`` controls simulation length (failure count ~ noise floor).
    ``jobs`` fans the per-case simulations out over the batch pool
    (``None`` = one worker per core) and ``cache`` consults/fills the
    on-disk result cache — neither changes any reported number.

    ``engine`` selects the simulation engine: the vectorized
    :mod:`~repro.simulation.fastpath` batch engine by default (it draws
    from the same named RNG streams as the DES, so host/io-only/local-only
    numbers are bit-identical and ndp agrees to Monte-Carlo noise), or
    ``"des"`` to fall back to the event-level oracle.
    """
    base = paper_parameters() if params is None else params
    table = TextTable(["case", "regime", "model eff", "sim eff", "abs diff", "failures"])
    rows = []
    worst = 0.0
    case_params = [base.with_(p_local_recovery=case.p_local) for case in cases]
    sims = run_simulations(
        [
            SimConfig(
                params=p,
                strategy=case.strategy,
                ratio=case.ratio,
                compression=case.compression,
                work=default_work(p, mttis),
                seed=seed,
                engine=engine,
            )
            for case, p in zip(cases, case_params)
        ],
        jobs=jobs,
        cache=cache,
    )
    for case, p, sim in zip(cases, case_params, sims):
        model: ModelResult
        if case.strategy == "ndp":
            model = multilevel_ndp(p, case.compression, rerun_accounting="staleness")
        else:
            model = multilevel_host(
                p, case.ratio, case.compression, rerun_accounting="staleness"
            )
        diff = abs(model.efficiency - sim.efficiency)
        if case.regime == "paper":
            worst = max(worst, diff)
        table.add_row(
            [
                case.label,
                case.regime,
                f"{model.efficiency:7.3f}",
                f"{sim.efficiency:7.3f}",
                f"{diff:7.3f}",
                sim.failures,
            ]
        )
        rows.append(
            {
                "case": case.label,
                "regime": case.regime,
                "model": model.efficiency,
                "sim": sim.efficiency,
                "diff": diff,
                "failures": sim.failures,
            }
        )
    note = (
        f"\nworst |model - sim| in the paper regime = {worst:.3f}"
        "\nExtreme (recovery-dominated) cases show the model's conservatism:"
        "\nthe simulated host keeps checkpointing during long reruns, so"
        "\nconsecutive failures roll back less than the expected-value model"
        "\ncharges — the model under-, never over-states efficiency there."
    )
    return ExperimentResult(
        experiment="validation",
        title="Model vs discrete-event simulation (staleness accounting)",
        rows=rows,
        text=table.render() + note,
        headline={"worst_paper_regime_diff": worst},
    )
