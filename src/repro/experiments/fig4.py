"""Figure 4: C/R overhead breakdown vs the locally-saved : I/O-saved ratio.

Sweeps the ratio for the *Local + I/O-Host* configuration and reports the
four overhead components both normalized to compute time (Fig. 4a) and as
a percentage of total execution time (Fig. 4b), exhibiting the
checkpoint-time vs rerun-time trade-off and the interior optimum.
"""

from __future__ import annotations

from ..core.configs import CRParameters, paper_parameters
from ..core.optimizer import sweep_ratio
from .common import ExperimentResult, TextTable

__all__ = ["run", "DEFAULT_RATIOS"]

DEFAULT_RATIOS = (1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256)


def run(
    params: CRParameters | None = None,
    ratios: tuple[int, ...] = DEFAULT_RATIOS,
    p_local: float = 0.85,
) -> ExperimentResult:
    """Sweep the ratio for multilevel-host without compression."""
    params = (paper_parameters() if params is None else params).with_(
        p_local_recovery=p_local
    )
    points = sweep_ratio(params, list(ratios))
    table = TextTable(
        [
            "ratio",
            "progress",
            "ckpt local %",
            "ckpt I/O %",
            "restore %",
            "rerun local %",
            "rerun I/O %",
            "total ovh %",
        ]
    )
    rows = []
    best = max(points, key=lambda pt: pt.efficiency)
    for pt in points:
        b = pt.result.breakdown
        table.add_row(
            [
                pt.ratio,
                f"{b.compute:7.1%}",
                f"{b.checkpoint_local:7.2%}",
                f"{b.checkpoint_io:7.2%}",
                f"{b.restore:7.2%}",
                f"{b.rerun_local:7.2%}",
                f"{b.rerun_io:7.2%}",
                f"{b.overhead:7.1%}",
            ]
        )
        rows.append({"ratio": pt.ratio, **b.as_dict()})
    note = (
        f"\nOptimum at ratio {best.ratio}: progress rate {best.efficiency:.1%} "
        "(checkpoint-I/O cost falls with the ratio, rerun-I/O cost rises; "
        "the total overhead has an interior minimum)"
    )
    return ExperimentResult(
        experiment="figure4",
        title="Figure 4: overhead breakdown vs locally-saved:I/O-saved ratio "
        f"(Local + I/O-Host, p_local={p_local:.0%})",
        rows=rows,
        text=table.render() + note,
        headline={"optimal_ratio": best.ratio, "optimal_efficiency": best.efficiency},
    )
