"""Figure 4: C/R overhead breakdown vs the locally-saved : I/O-saved ratio.

Sweeps the ratio for the *Local + I/O-Host* configuration and reports the
four overhead components both normalized to compute time (Fig. 4a) and as
a percentage of total execution time (Fig. 4b), exhibiting the
checkpoint-time vs rerun-time trade-off and the interior optimum.

The sweep evaluates every ratio in **one vectorized pass** over
:func:`repro.core.sweeps.host_breakdown_grid`, whose arithmetic mirrors
the scalar model operation for operation — the rows are bit-identical to
the historical per-ratio :func:`repro.core.optimizer.sweep_ratio` loop
(regression-tested in ``tests/experiments/test_fig45_grid.py``).
"""

from __future__ import annotations

import numpy as np

from ..core.breakdown import OverheadBreakdown
from ..core.configs import CRParameters, paper_parameters
from ..core.sweeps import SweepGrid, host_breakdown_grid
from .common import ExperimentResult, TextTable

__all__ = ["run", "DEFAULT_RATIOS"]

DEFAULT_RATIOS = (1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256)


def _grid_of(params: CRParameters) -> SweepGrid:
    """The one-element scenario grid matching ``params`` exactly."""
    return SweepGrid(
        mtti=params.mtti,
        checkpoint_size=params.checkpoint_size,
        local_bandwidth=params.local_bandwidth,
        io_bandwidth=params.io_bandwidth,
        p_local=params.p_local_recovery,
        local_interval=params.local_interval,
        restart_overhead=params.restart_overhead,
    )


def run(
    params: CRParameters | None = None,
    ratios: tuple[int, ...] = DEFAULT_RATIOS,
    p_local: float = 0.85,
) -> ExperimentResult:
    """Sweep the ratio for multilevel-host without compression."""
    params = (paper_parameters() if params is None else params).with_(
        p_local_recovery=p_local
    )
    cols = host_breakdown_grid(_grid_of(params), np.asarray(ratios, dtype=float))
    table = TextTable(
        [
            "ratio",
            "progress",
            "ckpt local %",
            "ckpt I/O %",
            "restore %",
            "rerun local %",
            "rerun I/O %",
            "total ovh %",
        ]
    )
    rows = []
    best_i = int(np.argmax(cols["efficiency"]))
    for i, ratio in enumerate(ratios):
        b = OverheadBreakdown(
            **{
                name: float(cols[name][i])
                for name in OverheadBreakdown.component_names()
            }
        )
        table.add_row(
            [
                ratio,
                f"{b.compute:7.1%}",
                f"{b.checkpoint_local:7.2%}",
                f"{b.checkpoint_io:7.2%}",
                f"{b.restore:7.2%}",
                f"{b.rerun_local:7.2%}",
                f"{b.rerun_io:7.2%}",
                f"{b.overhead:7.1%}",
            ]
        )
        rows.append({"ratio": ratio, **b.as_dict()})
    best_eff = float(cols["efficiency"][best_i])
    note = (
        f"\nOptimum at ratio {ratios[best_i]}: progress rate {best_eff:.1%} "
        "(checkpoint-I/O cost falls with the ratio, rerun-I/O cost rises; "
        "the total overhead has an interior minimum)"
    )
    return ExperimentResult(
        experiment="figure4",
        title="Figure 4: overhead breakdown vs locally-saved:I/O-saved ratio "
        f"(Local + I/O-Host, p_local={p_local:.0%})",
        rows=rows,
        text=table.render() + note,
        headline={"optimal_ratio": ratios[best_i], "optimal_efficiency": best_eff},
    )
