"""The reproduction scorecard: every checkable paper claim, PASS/FAIL.

One experiment that re-derives each quantitative claim the paper states in
prose or tables and grades the reproduction against it.  This is the
at-a-glance answer to "does the repo actually reproduce the paper?" — and
the bench version (`bench_scorecard.py`) turns any regression into a test
failure.

Claims use tolerance bands, not equality: the paper's own evaluation is a
model over projected hardware, so the reproduction target is the number's
neighbourhood and the direction of every comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core import daly
from ..core.configs import HOST_GZIP1, NDP_GZIP1, paper_parameters
from ..core.model import io_only, multilevel_ndp, ndp_io_interval, single_level
from ..core.ndp_sizing import sizing_table
from ..core.optimizer import optimal_host
from ..core.projection import EXASCALE, checkpoint_requirements
from ..compression.study import PAPER_UTILITY_AVERAGES
from ..simulation.pool import parallel_map
from .common import ExperimentResult, TextTable

__all__ = ["run"]


@dataclass(frozen=True)
class Claim:
    """One paper claim: where it is stated, what it predicts, what we get."""

    source: str
    statement: str
    expected: float
    measure: Callable[[], float]
    abs_tol: float

    def evaluate(self) -> tuple[float, bool]:
        value = self.measure()
        return value, abs(value - self.expected) <= self.abs_tol


def _claims() -> list[Claim]:
    p = paper_parameters()
    p96 = p.with_(p_local_recovery=0.96)

    def headline(engine: str) -> float:
        total = 0.0
        for pl in (0.2, 0.4, 0.6, 0.8):
            pp = p.with_(p_local_recovery=pl)
            if engine == "host":
                total += optimal_host(pp, HOST_GZIP1).efficiency
            else:
                total += multilevel_ndp(pp, NDP_GZIP1).efficiency
        return total / 4

    sizing = {
        s.utility: s for s in sizing_table(dict(PAPER_UTILITY_AVERAGES), p)
    }
    return [
        Claim("§3.2", "system MTTI 30 minutes", 30.0,
              lambda: EXASCALE.system_mtti / 60, 0.0),
        Claim("§3.3", "90% needs ~9 s commit time", 9.0,
              lambda: checkpoint_requirements().commit_time, 2.0),
        Claim("§3.3", "per-node commit bandwidth ~12.44 GB/s", 12.44,
              lambda: checkpoint_requirements().node_bandwidth / 1e9, 1.5),
        Claim("§3.4", "18.67 min to write 112 GB to I/O", 18.67,
              lambda: p.io_commit_time() / 60, 0.05),
        Claim("§5.3", "gzip(1): 112 GB compresses to ~30.5 GB, 305 s to I/O", 305.0,
              lambda: sizing["gzip(1)"].checkpoint_interval, 5.0),
        Claim("Table 3", "gzip(1) needs 4 NDP cores", 4.0,
              lambda: float(sizing["gzip(1)"].cores), 0.0),
        Claim("Table 3", "xz(6) needs 125 NDP cores", 125.0,
              lambda: float(sizing["xz(6)"].cores), 0.0),
        Claim("Fig. 1/§2", "90% progress needs M/delta ~ 200", 200.0,
              lambda: 1.0 / (daly.required_delta_for_efficiency(0.9, 1.0)), 20.0),
        Claim("§6.2 design point", "single-level local hits ~90%", 0.90,
              lambda: single_level(p, level="local").efficiency, 0.02),
        Claim("§6.3", "avg host multilevel + compression ~51%", 0.51,
              lambda: headline("host"), 0.05),
        Claim("§6.3", "avg NDP multilevel + compression ~78%", 0.78,
              lambda: headline("ndp"), 0.04),
        Claim("§6.4", "NDP Rerun-I/O ~1.2% at 4% I/O recovery", 0.012,
              lambda: multilevel_ndp(p96).breakdown.rerun_io, 0.006),
        Claim("§6.4", "NDP+comp Rerun-I/O ~0.6%", 0.006,
              lambda: multilevel_ndp(p96, NDP_GZIP1).breakdown.rerun_io, 0.004),
        Claim("§6.4", "NDP+comp approaches 90% progress", 0.90,
              lambda: multilevel_ndp(p96, NDP_GZIP1).efficiency, 0.02),
        Claim("Fig. 8 @112GB", "L-15+NC ~87%", 0.87,
              lambda: multilevel_ndp(p, NDP_GZIP1).efficiency, 0.03),
        Claim("Fig. 8 @112GB", "L-15+HC ~65%", 0.65,
              lambda: optimal_host(p, HOST_GZIP1).efficiency, 0.07),
        Claim("§6.2", "NDP drains every 8th ckpt uncompressed", 8.0,
              lambda: float(ndp_io_interval(p)[0]), 0.0),
        Claim("§6.2", "NDP+gzip(1) drains every 3rd ckpt", 3.0,
              lambda: float(ndp_io_interval(p, NDP_GZIP1)[0]), 0.0),
        Claim("Fig. 6", "I/O-Only + compression beats I/O-Only by >2x", 2.0,
              lambda: min(io_only(p, HOST_GZIP1).efficiency
                          / max(io_only(p).efficiency, 1e-9), 2.0), 0.0),
    ]


def run(jobs: int | None = 1) -> ExperimentResult:
    """Evaluate every claim and grade it.

    ``jobs`` evaluates claims concurrently (thread backend: the measures
    close over parameter bundles and are numpy-bound); the report order
    and every number are identical at any worker count.
    """
    table = TextTable(["source", "claim", "paper", "measured", "grade"])
    rows = []
    passed = 0
    claims = _claims()
    verdicts = parallel_map(
        lambda c: c.evaluate(), claims, jobs=jobs, backend="thread"
    )
    for claim, (value, ok) in zip(claims, verdicts):
        passed += ok
        table.add_row(
            [
                claim.source,
                claim.statement,
                f"{claim.expected:g}",
                f"{value:.3f}",
                "PASS" if ok else "FAIL",
            ]
        )
        rows.append(
            {
                "source": claim.source,
                "statement": claim.statement,
                "expected": claim.expected,
                "measured": value,
                "pass": ok,
            }
        )
    note = f"\n{passed}/{len(claims)} claims reproduced within tolerance."
    return ExperimentResult(
        experiment="scorecard",
        title="Reproduction scorecard: paper claims vs this implementation",
        rows=rows,
        text=table.render() + note,
        headline={"passed": float(passed), "total": float(len(claims))},
    )
