"""Ablation: sensitivity to the exponential-failure assumption.

Daly's model (and the paper's) assumes exponentially-distributed
interrupts.  Production failure logs often show Weibull interarrivals
with shape < 1 — bursts of correlated failures separated by quiet spells.
This experiment re-runs the main configurations in the simulator with
Weibull interarrivals at the same mean MTTI and asks whether the paper's
conclusion (NDP wins, by a lot) survives the distributional change.
"""

from __future__ import annotations

from ..core.configs import NDP_GZIP1, paper_parameters
from ..simulation import SimConfig, default_work, simulate
from .common import ExperimentResult, TextTable

__all__ = ["run"]

DEFAULT_SHAPES = (0.5, 0.7, 1.0, 1.5)


def run(
    shapes: tuple[float, ...] = DEFAULT_SHAPES,
    mttis: float = 150.0,
    seed: int = 31,
) -> ExperimentResult:
    """Host vs NDP efficiency under Weibull failure interarrivals."""
    params = paper_parameters()
    work = default_work(params, mttis)
    table = TextTable(
        ["Weibull shape", "host r=15 + comp", "NDP + comp", "NDP advantage", "failures"]
    )
    rows = []
    for shape in shapes:
        host = simulate(
            SimConfig(
                params=params,
                strategy="host",
                ratio=15,
                compression=NDP_GZIP1,
                work=work,
                seed=seed,
                failure_shape=shape,
            )
        )
        ndp = simulate(
            SimConfig(
                params=params,
                strategy="ndp",
                compression=NDP_GZIP1,
                work=work,
                seed=seed,
                failure_shape=shape,
            )
        )
        adv = ndp.efficiency - host.efficiency
        label = f"{shape:.1f}" + (" (exponential)" if shape == 1.0 else "")
        table.add_row(
            [label, f"{host.efficiency:7.3f}", f"{ndp.efficiency:7.3f}", f"{adv:+7.3f}", ndp.failures]
        )
        rows.append(
            {
                "shape": shape,
                "host": host.efficiency,
                "ndp": ndp.efficiency,
                "advantage": adv,
            }
        )
    note = (
        "\nBursty failures (shape < 1) cluster rollbacks into bad stretches but"
        "\nalso leave long quiet spells; the mean-driven efficiency moves only"
        "\nmodestly and the NDP advantage persists at every shape — the paper's"
        "\nexponential assumption is not load-bearing for its conclusion."
    )
    return ExperimentResult(
        experiment="ablation-failure-dist",
        title="Ablation: Weibull failure interarrivals vs the exponential assumption",
        rows=rows,
        text=table.render() + note,
        headline={"min_advantage": min(r["advantage"] for r in rows)},
    )
