"""Experiment modules: one per paper table/figure, plus validation/ablations.

Each module exposes ``run(...) -> ExperimentResult``; :data:`REGISTRY`
maps experiment ids (as used by the CLI and DESIGN.md's index) to those
callables.
"""

from typing import Callable

from . import ablations, cluster, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9
from . import economics, failure_dist, heatmap, interval, io_budget, methods, partner
from . import scorecard, table1, table2, table3, table4, validation
from .common import ExperimentResult, TextTable

__all__ = ["REGISTRY", "ExperimentResult", "TextTable", "run_experiment"]

REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "scorecard": scorecard.run,
    "figure1": fig1.run,
    "figure2": fig2.run,
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "figure3": fig3.run,
    "figure4": fig4.run,
    "figure5": fig5.run,
    "figure6": fig6.run,
    "figure7": fig7.run,
    "figure8": fig8.run,
    "figure9": fig9.run,
    "figure89-heatmap": heatmap.run,
    "validation": validation.run,
    "ablation-methods": methods.run,
    "ablation-cluster": cluster.run,
    "ablation-failure-dist": failure_dist.run,
    "ablation-partner": partner.run,
    "ablation-interval": interval.run,
    "ablation-io-budget": io_budget.run,
    "ablation-economics": economics.run,
    "ablation-rerun": ablations.rerun_accounting,
    "ablation-daly": ablations.daly_order,
    "ablation-delta": ablations.delta_compression,
    "ablation-ndp-pause": ablations.ndp_pause,
}


def run_experiment(name: str, **kwargs: object) -> ExperimentResult:
    """Run a registered experiment by id."""
    try:
        fn = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; one of {sorted(REGISTRY)}"
        ) from None
    return fn(**kwargs)  # type: ignore[arg-type]
