"""Figure 9: progress rate vs system MTTI for five configurations.

MTTI sweeps from 30 to 150 minutes at a fixed 112 GB checkpoint; the gain
from NDP shrinks as failures become rarer (less recovery and rerun to
hide), which is the paper's closing sensitivity observation.

``simulate_seeds > 0`` overlays Monte-Carlo validation via one
:func:`~repro.simulation.simulate_grid` pass over the whole
(MTTI x configuration) plane.
"""

from __future__ import annotations

from ..core.configs import paper_parameters
from ..core.units import minutes
from ..simulation import ResultCache, default_work, simulate_grid
from .common import (
    SENSITIVITY_CONFIGS,
    ExperimentResult,
    TextTable,
    sensitivity_result,
    sensitivity_sim_config,
)

__all__ = ["run", "sim_configs", "DEFAULT_MTTIS_MIN"]

DEFAULT_MTTIS_MIN = (30, 60, 90, 120, 150)


def sim_configs(
    mttis_min: tuple[int, ...] = DEFAULT_MTTIS_MIN,
    p_local: float = 0.85,
    mttis: float = 50.0,
):
    """The figure's (MTTI x configuration) grid as simulator configs."""
    base = paper_parameters().with_(p_local_recovery=p_local)
    labels = list(SENSITIVITY_CONFIGS)
    grid = []
    for m in mttis_min:
        params = base.with_(mtti=minutes(m))
        work = default_work(params, mttis)
        grid.append([sensitivity_sim_config(lab, params, work) for lab in labels])
    return grid


def run(
    mttis_min: tuple[int, ...] = DEFAULT_MTTIS_MIN,
    p_local: float = 0.85,
    simulate_seeds: int = 0,
    simulate_mttis: float = 50.0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> ExperimentResult:
    """Sweep MTTI for the five sensitivity configurations."""
    base = paper_parameters().with_(p_local_recovery=p_local)
    labels = list(SENSITIVITY_CONFIGS)
    table = TextTable(["MTTI"] + labels)
    rows = []
    for m in mttis_min:
        params = base.with_(mtti=minutes(m))
        effs = {lab: sensitivity_result(lab, params).efficiency for lab in labels}
        table.add_row([f"{m:4d} min"] + [f"{e:6.1%}" for e in effs.values()])
        rows.append({"mtti_min": m, **effs})
    gain_first = rows[0]["L-15GBps + I/O-NC"] - rows[0]["L-15GBps + I/O-HC"]
    gain_last = rows[-1]["L-15GBps + I/O-NC"] - rows[-1]["L-15GBps + I/O-HC"]
    note = (
        f"\nNDP's gain over host+compression shrinks with MTTI: "
        f"+{gain_first:.1%} at {mttis_min[0]} min vs +{gain_last:.1%} at "
        f"{mttis_min[-1]} min (rarer failures leave less overhead to hide)."
    )
    text = table.render() + note
    if simulate_seeds:
        grid = simulate_grid(
            sim_configs(mttis_min, p_local, simulate_mttis),
            seeds=range(simulate_seeds),
            jobs=jobs,
            cache=cache,
        )
        sim_table = TextTable(["MTTI"] + labels)
        for i, (m, row) in enumerate(zip(mttis_min, rows)):
            for j, lab in enumerate(labels):
                row[f"sim {lab}"] = float(grid.efficiency[i, j])
            sim_table.add_row(
                [f"{m:4d} min"]
                + [f"{grid.efficiency[i, j]:6.1%}" for j in range(len(labels))]
            )
        text += (
            f"\n\nSimulated (fast engine, {simulate_seeds} seeds x "
            f"{simulate_mttis:.0f} MTTIs per cell):\n" + sim_table.render()
        )
    return ExperimentResult(
        experiment="figure9",
        title="Figure 9: progress rate vs system MTTI (112 GB checkpoints)",
        rows=rows,
        text=text,
        headline={"gain_at_min_mtti": gain_first, "gain_at_max_mtti": gain_last},
    )
