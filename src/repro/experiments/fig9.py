"""Figure 9: progress rate vs system MTTI for five configurations.

MTTI sweeps from 30 to 150 minutes at a fixed 112 GB checkpoint; the gain
from NDP shrinks as failures become rarer (less recovery and rerun to
hide), which is the paper's closing sensitivity observation.
"""

from __future__ import annotations

from ..core.configs import paper_parameters
from ..core.units import minutes
from .common import SENSITIVITY_CONFIGS, ExperimentResult, TextTable, sensitivity_result

__all__ = ["run", "DEFAULT_MTTIS_MIN"]

DEFAULT_MTTIS_MIN = (30, 60, 90, 120, 150)


def run(
    mttis_min: tuple[int, ...] = DEFAULT_MTTIS_MIN, p_local: float = 0.85
) -> ExperimentResult:
    """Sweep MTTI for the five sensitivity configurations."""
    base = paper_parameters().with_(p_local_recovery=p_local)
    labels = list(SENSITIVITY_CONFIGS)
    table = TextTable(["MTTI"] + labels)
    rows = []
    for m in mttis_min:
        params = base.with_(mtti=minutes(m))
        effs = {lab: sensitivity_result(lab, params).efficiency for lab in labels}
        table.add_row([f"{m:4d} min"] + [f"{e:6.1%}" for e in effs.values()])
        rows.append({"mtti_min": m, **effs})
    gain_first = rows[0]["L-15GBps + I/O-NC"] - rows[0]["L-15GBps + I/O-HC"]
    gain_last = rows[-1]["L-15GBps + I/O-NC"] - rows[-1]["L-15GBps + I/O-HC"]
    note = (
        f"\nNDP's gain over host+compression shrinks with MTTI: "
        f"+{gain_first:.1%} at {mttis_min[0]} min vs +{gain_last:.1%} at "
        f"{mttis_min[-1]} min (rarer failures leave less overhead to hide)."
    )
    return ExperimentResult(
        experiment="figure9",
        title="Figure 9: progress rate vs system MTTI (112 GB checkpoints)",
        rows=rows,
        text=table.render() + note,
        headline={"gain_at_min_mtti": gain_first, "gain_at_max_mtti": gain_last},
    )
