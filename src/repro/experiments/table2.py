"""Table 2: the compression study — factor and speed per mini-app x codec.

Two modes: ``source="measured"`` runs the live study on calibrated proxy
checkpoints with the real codecs (zlib/bz2/lzma/from-scratch LZ4);
``source="paper"`` renders the transcribed published table.  The measured
factors track the paper's because the proxies are calibrated on the
gzip(1) column; measured *speeds* are this machine's, as the paper's were
its Core i7's.
"""

from __future__ import annotations

from ..compression.codecs import default_codecs, make_codec
from ..compression.study import PAPER_TABLE2, average_by_utility, run_study
from ..workloads.generator import study_datasets
from .common import ExperimentResult, TextTable

__all__ = ["run"]


def run(
    source: str = "measured",
    apps: list[str] | None = None,
    ranks: int = 2,
    utilities: list[tuple[str, int]] | None = None,
) -> ExperimentResult:
    """Regenerate Table 2.

    ``ranks`` scales the dataset size (2 ranks/app keeps the slow xz(6)
    and pure-Python lz4 columns tractable; the paper's shape is identical
    at any size).  ``utilities`` restricts the codec set, e.g.
    ``[("gzip", 1), ("lz4", 1)]``.
    """
    if source == "paper":
        return _paper_table()
    if source != "measured":
        raise ValueError(f"source must be 'paper' or 'measured': {source!r}")

    codecs = (
        default_codecs()
        if utilities is None
        else [make_codec(u, lv) for u, lv in utilities]
    )
    datasets = study_datasets(apps=apps, ranks=ranks)
    study = run_study(datasets, codecs)
    names = [c.name for c in codecs]
    table = TextTable(
        ["Mini-app", "Data (MB)"]
        + [f"{n} f" for n in names]
        + [f"{n} MB/s" for n in names]
    )
    rows = []
    for app in study.apps():
        ms = study.results[app]
        size_mb = ms[names[0]].input_bytes / 1e6
        table.add_row(
            [app, f"{size_mb:.1f}"]
            + [f"{ms[n].factor:6.1%}" for n in names]
            + [f"{ms[n].compress_speed / 1e6:8.1f}" for n in names]
        )
        rows.append(
            {
                "app": app,
                "bytes": ms[names[0]].input_bytes,
                **{f"{n}_factor": ms[n].factor for n in names},
                **{f"{n}_speed": ms[n].compress_speed for n in names},
            }
        )
    avgs = average_by_utility(study)
    table.add_row(
        ["Average", ""]
        + [f"{avgs[n][0]:6.1%}" for n in names]
        + [f"{avgs[n][1] / 1e6:8.1f}" for n in names]
    )
    note = (
        "\nNote: factors come from the real codecs on calibrated proxy checkpoints;"
        "\nspeeds are this host's (the lz4 column is the from-scratch pure-Python"
        "\ncodec, so its speed is not comparable to the C implementation)."
    )
    headline = {f"{n}_avg_factor": avgs[n][0] for n in names if n in avgs}
    return ExperimentResult(
        experiment="table2",
        title="Table 2 (measured): compression factor and single-thread speed",
        rows=rows,
        text=table.render() + note,
        headline=headline,
    )


def _paper_table() -> ExperimentResult:
    names = list(PAPER_TABLE2[0].measurements)
    table = TextTable(["Mini-app", "Ckpt (GB)"] + [f"{n} f/MBps" for n in names])
    rows = []
    for row in PAPER_TABLE2:
        table.add_row(
            [row.app, f"{row.checkpoint_bytes / 1e9:7.2f}"]
            + [
                f"{row.measurements[n][0]:5.1%}/{row.measurements[n][1] / 1e6:6.1f}"
                for n in names
            ]
        )
        rows.append({"app": row.app, **{n: row.measurements[n] for n in names}})
    return ExperimentResult(
        experiment="table2",
        title="Table 2 (paper transcription)",
        rows=rows,
        text=table.render(),
    )
