"""Table 1: the exascale system projection scaled from Titan."""

from __future__ import annotations

from ..core.projection import EXASCALE, TITAN, checkpoint_requirements, projection_table
from .common import ExperimentResult, TextTable

__all__ = ["run"]

#: The paper's Table 1 values for verification (projected column).
PAPER_REFERENCE = {
    "node_count": 100_000,
    "system_peak_pflops": 1000.0,
    "node_peak_tflops": 10.0,
    "system_memory_pb": 14.0,
    "node_memory_gb": 140.0,
    "interconnect_gbps": 50.0,
    "io_bandwidth_tbps": 10.0,
    "mtti_minutes": 30.0,
}


def run() -> ExperimentResult:
    """Regenerate Table 1 plus the Section 3.3 derived requirements."""
    table = TextTable(["Parameter", "Titan Cray XK7", "Exascale Projection", "Factor"])
    rows = projection_table(TITAN, EXASCALE)
    for r in rows:
        factor = r["factor"]
        label = f"{factor:.2f}x" if factor >= 1 else f"(1/{1 / factor:.2f})x"
        table.add_row(
            [r["parameter"], f"{r['base']:,.2f} {r['unit']}", f"{r['projected']:,.2f} {r['unit']}", label]
        )
    req = checkpoint_requirements(EXASCALE)
    extras = (
        f"\nSection 3.3 requirements at 90% progress (M = 30 min, 112 GB/node):\n"
        f"  checkpoint commit time : {req.commit_time:8.1f} s  (~M/{EXASCALE.system_mtti / req.commit_time:.0f})\n"
        f"  checkpoint period      : {req.checkpoint_period:8.1f} s  (~M/{EXASCALE.system_mtti / req.checkpoint_period:.1f})\n"
        f"  per-node bandwidth     : {req.node_bandwidth / 1e9:8.2f} GB/s\n"
        f"  system bandwidth       : {req.system_bandwidth / 1e15:8.3f} PB/s "
        f"(vs {EXASCALE.io_bandwidth / 1e12:.0f} TB/s of global I/O)"
    )
    return ExperimentResult(
        experiment="table1",
        title="Table 1: exascale projection scaled from the Titan Cray XK7",
        rows=rows,
        text=table.render() + extras,
        headline={
            "node_count": EXASCALE.node_count,
            "mtti_minutes": EXASCALE.system_mtti / 60.0,
            "node_memory_gb": EXASCALE.node_memory_bytes / 1e9,
            "commit_time_s": req.commit_time,
        },
    )
