"""Extension: the NDP advantage over the full (size x MTTI) plane.

Figures 8 and 9 are two 1-D slices through the same design space.  With
the vectorized sweep engine the whole plane is one numpy pass, so this
experiment maps NDP+compression's efficiency advantage over
host+compression everywhere — showing that the paper's slices are
representative and where the advantage peaks (large checkpoints, short
MTTI).
"""

from __future__ import annotations

import numpy as np

from ..core.configs import HOST_GZIP1, NDP_GZIP1, paper_parameters
from ..core.sweeps import SweepGrid, ndp_efficiency_grid, optimal_host_grid
from ..core.units import gb, minutes
from ..simulation import ResultCache, SimConfig, default_work, simulate_grid
from .common import ExperimentResult

__all__ = ["run"]

_SHADES = " .:-=+*#%@"


def _ascii_heat(values: np.ndarray, lo: float, hi: float) -> list[str]:
    idx = np.clip(
        ((values - lo) / max(hi - lo, 1e-12) * (len(_SHADES) - 1)).astype(int),
        0,
        len(_SHADES) - 1,
    )
    return ["".join(_SHADES[i] for i in row) for row in idx]


def run(
    size_gb_range: tuple[float, float] = (14.0, 140.0),
    mtti_min_range: tuple[float, float] = (10.0, 150.0),
    resolution: int = 24,
    p_local: float = 0.85,
    simulate_seeds: int = 0,
    simulate_mttis: float = 20.0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> ExperimentResult:
    """Compute NDP-vs-host advantage over the (size, MTTI) plane.

    ``simulate_seeds > 0`` cross-checks the whole analytic plane against
    the fast simulation engine: both strategies at every grid cell go
    through one :func:`~repro.simulation.simulate_grid` pass (the host
    cells at their per-cell optimal ratio).
    """
    sizes = gb(np.linspace(*size_gb_range, resolution))
    mttis = minutes(np.linspace(*mtti_min_range, resolution))
    grid = SweepGrid(
        mtti=mttis[:, None],
        checkpoint_size=sizes[None, :],
        local_bandwidth=15e9,
        io_bandwidth=100e6,
        p_local=p_local,
    )
    ndp = ndp_efficiency_grid(grid, NDP_GZIP1)
    ratios, host = optimal_host_grid(grid, HOST_GZIP1, max_ratio=256)
    advantage = ndp - host

    sim_ndp = sim_host = None
    sim_note = ""
    if simulate_seeds:
        base = paper_parameters().with_(
            local_bandwidth=15e9,
            io_bandwidth=100e6,
            p_local_recovery=p_local,
            local_interval=None,
        )
        cells = []
        for strategy in ("ndp", "host"):
            plane = []
            for i in range(resolution):
                row_cfgs = []
                for j in range(resolution):
                    p = base.with_(
                        mtti=float(mttis[i]), checkpoint_size=float(sizes[j])
                    )
                    work = default_work(p, simulate_mttis)
                    if strategy == "ndp":
                        row_cfgs.append(
                            SimConfig(
                                params=p,
                                strategy="ndp",
                                compression=NDP_GZIP1,
                                work=work,
                            )
                        )
                    else:
                        row_cfgs.append(
                            SimConfig(
                                params=p,
                                strategy="host",
                                ratio=int(ratios[i, j]),
                                compression=HOST_GZIP1,
                                work=work,
                            )
                        )
                plane.append(row_cfgs)
            cells.append(plane)
        sim = simulate_grid(
            cells, seeds=range(simulate_seeds), jobs=jobs, cache=cache
        )
        sim_ndp, sim_host = sim.efficiency[0], sim.efficiency[1]
        gap = np.abs((sim_ndp - sim_host) - advantage)
        sim_note = (
            f"\nsimulated cross-check ({simulate_seeds} seeds x "
            f"{simulate_mttis:.0f} MTTIs per cell): mean |sim - model| "
            f"advantage gap {gap.mean():.3f}, max {gap.max():.3f}."
        )

    peak = np.unravel_index(np.argmax(advantage), advantage.shape)
    rows = []
    for i in range(0, resolution, max(resolution // 6, 1)):
        for j in range(0, resolution, max(resolution // 6, 1)):
            row = {
                "mtti_s": float(mttis[i]),
                "size_bytes": float(sizes[j]),
                "ndp": float(ndp[i, j]),
                "host": float(host[i, j]),
                "advantage": float(advantage[i, j]),
            }
            if sim_ndp is not None:
                row["sim_ndp"] = float(sim_ndp[i, j])
                row["sim_host"] = float(sim_host[i, j])
                row["sim_advantage"] = float(sim_ndp[i, j] - sim_host[i, j])
            rows.append(row)

    heat = _ascii_heat(advantage, 0.0, float(advantage.max()))
    header = (
        f"NDP+comp minus host+comp efficiency, p_local={p_local:.0%}\n"
        f"x: checkpoint size {size_gb_range[0]:.0f}..{size_gb_range[1]:.0f} GB; "
        f"y: MTTI {mtti_min_range[0]:.0f}..{mtti_min_range[1]:.0f} min (top=short)\n"
    )
    legend = f"\nshade scale: ' '=0 .. '@'={advantage.max():.2f}"
    peak_note = (
        f"\npeak advantage {advantage[peak]:.1%} at MTTI "
        f"{mttis[peak[0]] / 60:.0f} min, size {sizes[peak[1]] / 1e9:.0f} GB — "
        "largest where failures are frequent and checkpoints large, exactly "
        "the exascale corner the paper targets."
    )
    headline = {
        "peak_advantage": float(advantage.max()),
        "min_advantage": float(advantage.min()),
    }
    if sim_ndp is not None:
        headline["sim_mean_abs_gap"] = float(
            np.abs((sim_ndp - sim_host) - advantage).mean()
        )
    return ExperimentResult(
        experiment="figure89-heatmap",
        title="Extension: NDP advantage over the (size x MTTI) plane",
        rows=rows,
        text=header + "\n".join(heat) + legend + peak_note + sim_note,
        headline=headline,
    )
