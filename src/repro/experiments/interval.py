"""Ablation: sensitivity to the local checkpoint interval (tau).

Table 4 fixes tau at 150 s from Daly's estimate.  This experiment sweeps
tau around that choice in the NDP model and verifies that (a) efficiency
is flat-topped near the Daly optimum (so the paper's rounding from ~159 s
to 150 s is immaterial), and (b) the simulator agrees on where the optimum
sits.
"""

from __future__ import annotations

from ..core import daly
from ..core.configs import NDP_GZIP1, paper_parameters
from ..core.model import multilevel_ndp
from ..simulation import SimConfig, default_work, simulate
from .common import ExperimentResult, TextTable

__all__ = ["run"]


def run(
    taus: tuple[float, ...] = (30.0, 60.0, 100.0, 150.0, 225.0, 400.0, 800.0),
    with_simulation: bool = True,
    mttis: float = 100.0,
    seed: int = 19,
) -> ExperimentResult:
    """Model (and optionally simulated) efficiency across tau."""
    base = paper_parameters()
    daly_tau = float(daly.daly_interval(base.local_commit_time, base.mtti))
    table = TextTable(
        ["tau", "model eff", "sim eff"] if with_simulation else ["tau", "model eff"]
    )
    rows = []
    for tau in taus:
        params = base.with_(local_interval=tau)
        model = multilevel_ndp(params, NDP_GZIP1).efficiency
        row = {"tau": tau, "model": model}
        cells = [f"{tau:6.0f} s", f"{model:7.3f}"]
        if with_simulation:
            sim = simulate(
                SimConfig(
                    params=params,
                    strategy="ndp",
                    compression=NDP_GZIP1,
                    work=default_work(params, mttis),
                    seed=seed,
                )
            ).efficiency
            row["sim"] = sim
            cells.append(f"{sim:7.3f}")
        table.add_row(cells)
        rows.append(row)

    best = max(rows, key=lambda r: r["model"])
    at_150 = next(r["model"] for r in rows if r["tau"] == 150.0)
    note = (
        f"\nDaly's estimate for delta_L={base.local_commit_time:.1f}s, "
        f"M={base.mtti:.0f}s: tau = {daly_tau:.0f}s."
        f"\nModel optimum in the sweep: tau = {best['tau']:.0f}s "
        f"({best['model']:.1%}); Table 4's 150 s gives {at_150:.1%} — "
        "the optimum is flat, the paper's rounding costs nothing."
    )
    return ExperimentResult(
        experiment="ablation-interval",
        title="Ablation: local checkpoint interval sensitivity",
        rows=rows,
        text=table.render() + note,
        headline={
            "daly_tau": daly_tau,
            "best_tau": best["tau"],
            "loss_at_150": best["model"] - at_150,
        },
    )
