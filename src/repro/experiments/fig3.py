"""Figure 3: operational timelines of two-level checkpointing, host vs NDP.

Runs the discrete-event simulator twice over a failure-free window with
scaled-down timings (so the blocking I/O writes and drains are visible at
terminal resolution) and renders the HOST/NDP lanes as ASCII — a
qualitative regeneration of the paper's Figure 3 from actual simulated
schedules.
"""

from __future__ import annotations

from ..core.configs import CompressionSpec, paper_parameters
from ..core.units import gb_per_s, mb_per_s
from ..simulation import SimConfig, TimelineRecorder, render_ascii, simulate
from .common import ExperimentResult

__all__ = ["run"]


def run(horizon: float = 1400.0, width: int = 110, seed: int = 1234) -> ExperimentResult:
    """Render host-mode and NDP-mode timelines over the same window.

    Timings are compressed relative to Table 4 (bigger local commits,
    faster I/O) so every phase spans multiple character cells; the
    *structure* — blocking W phases in host mode vs continuous background
    d phases in NDP mode — is what Figure 3 communicates.
    """
    # Demo-scaled parameters: delta_L ~ 22 s, delta_IO ~ 160 s.
    params = paper_parameters().with_(
        mtti=1e9,  # failure-free window: Figure 3 shows normal operation
        local_bandwidth=gb_per_s(5),
        io_bandwidth=mb_per_s(700),
        local_interval=120.0,
    )
    comp = CompressionSpec(
        factor=0.5, compress_rate=mb_per_s(700), decompress_rate=gb_per_s(16), name="demo"
    )

    host_tr = TimelineRecorder(horizon=horizon)
    simulate(
        SimConfig(
            params=params,
            strategy="host",
            ratio=3,
            compression=comp,
            work=horizon,
            seed=seed,
            trace=host_tr,
        )
    )
    ndp_tr = TimelineRecorder(horizon=horizon)
    simulate(
        SimConfig(
            params=params,
            strategy="ndp",
            compression=comp,
            work=horizon,
            seed=seed,
            trace=ndp_tr,
        )
    )
    text = (
        "(a) two-level checkpointing WITHOUT NDP (host writes to I/O, blocking):\n"
        + render_ascii(host_tr, width=width, t_end=horizon)
        + "\n\n(b) two-level checkpointing WITH NDP (drain in background):\n"
        + render_ascii(ndp_tr, width=width, t_end=horizon)
    )
    return ExperimentResult(
        experiment="figure3",
        title="Figure 3: operational timeline, host vs NDP (simulated)",
        rows=[{"lane_spans_host": len(host_tr.spans), "lane_spans_ndp": len(ndp_tr.spans)}],
        text=text,
    )
