"""Table 3: NDP provisioning — required compression speed, cores, interval."""

from __future__ import annotations

from ..core.configs import paper_parameters
from ..core.ndp_sizing import select_utility, sizing_table
from ..compression.study import StudyResult, sizing_inputs
from .common import ExperimentResult, TextTable

__all__ = ["run"]

#: Table 3 as published: utility -> (required MB/s, cores, interval s).
PAPER_REFERENCE = {
    "gzip(1)": (367.0, 4, 305.0),
    "gzip(6)": (395.0, 8, 283.0),
    "bzip2(1)": (407.0, 34, 275.0),
    "bzip2(9)": (421.0, 41, 266.0),
    "xz(1)": (515.0, 21, 217.0),
    "xz(6)": (596.0, 125, 188.0),
    "lz4(1)": (283.0, 1, 395.0),
}


def run(source: str = "paper", study: StudyResult | None = None) -> ExperimentResult:
    """Regenerate Table 3 from Table 2 averages.

    ``source="paper"`` uses the transcribed averages (exact regeneration);
    ``source="measured"`` consumes a live :class:`StudyResult`.
    """
    params = paper_parameters()
    inputs = sizing_inputs(source, study)
    sizings = sizing_table(inputs, params)
    table = TextTable(
        ["Utility(level)", "Required speed", "NDP cores", "Ckpt interval"]
    )
    rows = []
    for s in sizings:
        table.add_row(
            [s.utility, f"{s.required_speed / 1e6:7.0f} MB/s", s.cores, f"{s.checkpoint_interval:6.0f} s"]
        )
        rows.append(
            {
                "utility": s.utility,
                "required_speed": s.required_speed,
                "cores": s.cores,
                "interval": s.checkpoint_interval,
            }
        )
    chosen = select_utility(sizings, max_cores=4)
    note = (
        f"\nSelection (Section 5.3, <=4 NDP cores): {chosen.utility} "
        f"-> {chosen.cores} cores, {chosen.checkpoint_interval:.0f} s I/O checkpoint interval"
    )
    return ExperimentResult(
        experiment="table3",
        title=f"Table 3 ({source}): NDP compression provisioning",
        rows=rows,
        text=table.render() + note,
        headline={"chosen_cores": chosen.cores, "chosen_interval": chosen.checkpoint_interval},
    )
