"""Figure 8: progress rate vs checkpoint size for five configurations.

Checkpoint size sweeps from 10% to 80% of the 140 GB node memory at a
fixed 30-minute MTTI; the five configurations are the sensitivity set
(host+compression at 15 GB/s NVM, NDP with/without compression at 15 and
2 GB/s NVM).  Key claims reproduced: NDP's advantage grows with checkpoint
size, and a 2 GB/s NVM with NDP matches or beats a 15 GB/s NVM without it.
"""

from __future__ import annotations

from ..core.configs import paper_parameters
from ..core.units import gb
from .common import SENSITIVITY_CONFIGS, ExperimentResult, TextTable, sensitivity_result

__all__ = ["run", "DEFAULT_FRACTIONS"]

DEFAULT_FRACTIONS = (0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80)

#: Paper anchor points (progress rate at 10% / 80% memory).
PAPER_REFERENCE = {
    "L-15GBps + I/O-NC @10%": 0.96,
    "L-15GBps + I/O-HC @10%": 0.88,
    "L-15GBps + I/O-NC @80%": 0.87,
    "L-15GBps + I/O-HC @80%": 0.65,
}


def run(
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    node_memory_gb: float = 140.0,
    p_local: float = 0.85,
) -> ExperimentResult:
    """Sweep checkpoint size for the five sensitivity configurations."""
    base = paper_parameters().with_(p_local_recovery=p_local)
    labels = list(SENSITIVITY_CONFIGS)
    table = TextTable(["ckpt size"] + labels)
    rows = []
    for frac in fractions:
        size = gb(node_memory_gb * frac)
        params = base.with_(checkpoint_size=size)
        effs = {lab: sensitivity_result(lab, params).efficiency for lab in labels}
        table.add_row(
            [f"{node_memory_gb * frac:5.0f} GB ({frac:.0%})"]
            + [f"{e:6.1%}" for e in effs.values()]
        )
        rows.append({"fraction": frac, "size": size, **effs})
    first, last = rows[0], rows[-1]
    note = (
        f"\nNDP+compression vs host+compression gain grows with size: "
        f"+{first['L-15GBps + I/O-NC'] - first['L-15GBps + I/O-HC']:.1%} at "
        f"{fractions[0]:.0%} memory vs "
        f"+{last['L-15GBps + I/O-NC'] - last['L-15GBps + I/O-HC']:.1%} at "
        f"{fractions[-1]:.0%}.  A 2 GB/s NVM with NDP matches or beats a "
        f"15 GB/s NVM with host-side compression."
    )
    return ExperimentResult(
        experiment="figure8",
        title="Figure 8: progress rate vs checkpoint size (MTTI 30 min)",
        rows=rows,
        text=table.render() + note,
        headline={
            "nc15_at_80pct": last["L-15GBps + I/O-NC"],
            "hc15_at_80pct": last["L-15GBps + I/O-HC"],
        },
    )
