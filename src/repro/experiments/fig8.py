"""Figure 8: progress rate vs checkpoint size for five configurations.

Checkpoint size sweeps from 10% to 80% of the 140 GB node memory at a
fixed 30-minute MTTI; the five configurations are the sensitivity set
(host+compression at 15 GB/s NVM, NDP with/without compression at 15 and
2 GB/s NVM).  Key claims reproduced: NDP's advantage grows with checkpoint
size, and a 2 GB/s NVM with NDP matches or beats a 15 GB/s NVM without it.

``simulate_seeds > 0`` overlays Monte-Carlo validation: the whole
(size x configuration) plane goes through one
:func:`~repro.simulation.simulate_grid` pass on the fast engine instead
of a per-config loop.
"""

from __future__ import annotations

from ..core.configs import paper_parameters
from ..core.units import gb
from ..simulation import ResultCache, default_work, simulate_grid
from .common import (
    SENSITIVITY_CONFIGS,
    ExperimentResult,
    TextTable,
    sensitivity_result,
    sensitivity_sim_config,
)

__all__ = ["run", "sim_configs", "DEFAULT_FRACTIONS"]

DEFAULT_FRACTIONS = (0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80)

#: Paper anchor points (progress rate at 10% / 80% memory).
PAPER_REFERENCE = {
    "L-15GBps + I/O-NC @10%": 0.96,
    "L-15GBps + I/O-HC @10%": 0.88,
    "L-15GBps + I/O-NC @80%": 0.87,
    "L-15GBps + I/O-HC @80%": 0.65,
}


def sim_configs(
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    node_memory_gb: float = 140.0,
    p_local: float = 0.85,
    mttis: float = 50.0,
):
    """The figure's (size x configuration) grid as simulator configs."""
    base = paper_parameters().with_(p_local_recovery=p_local)
    labels = list(SENSITIVITY_CONFIGS)
    grid = []
    for frac in fractions:
        params = base.with_(checkpoint_size=gb(node_memory_gb * frac))
        work = default_work(params, mttis)
        grid.append([sensitivity_sim_config(lab, params, work) for lab in labels])
    return grid


def run(
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    node_memory_gb: float = 140.0,
    p_local: float = 0.85,
    simulate_seeds: int = 0,
    simulate_mttis: float = 50.0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> ExperimentResult:
    """Sweep checkpoint size for the five sensitivity configurations."""
    base = paper_parameters().with_(p_local_recovery=p_local)
    labels = list(SENSITIVITY_CONFIGS)
    table = TextTable(["ckpt size"] + labels)
    rows = []
    for frac in fractions:
        size = gb(node_memory_gb * frac)
        params = base.with_(checkpoint_size=size)
        effs = {lab: sensitivity_result(lab, params).efficiency for lab in labels}
        table.add_row(
            [f"{node_memory_gb * frac:5.0f} GB ({frac:.0%})"]
            + [f"{e:6.1%}" for e in effs.values()]
        )
        rows.append({"fraction": frac, "size": size, **effs})
    first, last = rows[0], rows[-1]
    note = (
        f"\nNDP+compression vs host+compression gain grows with size: "
        f"+{first['L-15GBps + I/O-NC'] - first['L-15GBps + I/O-HC']:.1%} at "
        f"{fractions[0]:.0%} memory vs "
        f"+{last['L-15GBps + I/O-NC'] - last['L-15GBps + I/O-HC']:.1%} at "
        f"{fractions[-1]:.0%}.  A 2 GB/s NVM with NDP matches or beats a "
        f"15 GB/s NVM with host-side compression."
    )
    text = table.render() + note
    if simulate_seeds:
        grid = simulate_grid(
            sim_configs(fractions, node_memory_gb, p_local, simulate_mttis),
            seeds=range(simulate_seeds),
            jobs=jobs,
            cache=cache,
        )
        sim_table = TextTable(["ckpt size"] + labels)
        for i, (frac, row) in enumerate(zip(fractions, rows)):
            for j, lab in enumerate(labels):
                row[f"sim {lab}"] = float(grid.efficiency[i, j])
            sim_table.add_row(
                [f"{node_memory_gb * frac:5.0f} GB ({frac:.0%})"]
                + [f"{grid.efficiency[i, j]:6.1%}" for j in range(len(labels))]
            )
        text += (
            f"\n\nSimulated (fast engine, {simulate_seeds} seeds x "
            f"{simulate_mttis:.0f} MTTIs per cell):\n" + sim_table.render()
        )
    return ExperimentResult(
        experiment="figure8",
        title="Figure 8: progress rate vs checkpoint size (MTTI 30 min)",
        rows=rows,
        text=text,
        headline={
            "nc15_at_80pct": last["L-15GBps + I/O-NC"],
            "hc15_at_80pct": last["L-15GBps + I/O-HC"],
        },
    )
