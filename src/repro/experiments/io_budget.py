"""Extension: how much global-I/O bandwidth does NDP save?

The paper argues NDP lets a *cheaper* system hit the same efficiency
(its Figures 8/9 make the point for NVM bandwidth).  The same inversion
applies to the parallel file system: for a target progress rate, find the
per-node I/O share each configuration needs.  The ratio is the PFS
procurement saving NDP offers — a facility-economics headline the paper's
data implies but never states.

Solved by bisection on ``io_bandwidth`` (efficiency is monotone in it for
every configuration).
"""

from __future__ import annotations

from ..core.configs import HOST_GZIP1, NDP_GZIP1, NO_COMPRESSION, CompressionSpec, paper_parameters
from ..core.model import multilevel_ndp
from ..core.optimizer import optimal_host
from .common import ExperimentResult, TextTable

__all__ = ["run"]


def _required_io_bw(evaluate, target: float, lo: float = 1e6, hi: float = 1e10) -> float:
    """Smallest per-node I/O bandwidth reaching ``target`` efficiency."""
    if evaluate(hi) < target:
        return float("inf")
    if evaluate(lo) >= target:
        return lo
    for _ in range(60):
        mid = (lo * hi) ** 0.5
        if evaluate(mid) >= target:
            hi = mid
        else:
            lo = mid
    return (lo * hi) ** 0.5


def run(
    targets: tuple[float, ...] = (0.70, 0.80, 0.85),
    p_local: float = 0.85,
) -> ExperimentResult:
    """Per-node I/O bandwidth needed per configuration and target."""
    base = paper_parameters().with_(p_local_recovery=p_local)

    def host_eval(comp: CompressionSpec):
        return lambda bw: optimal_host(base.with_(io_bandwidth=bw), comp).efficiency

    def ndp_eval(comp: CompressionSpec):
        return lambda bw: multilevel_ndp(base.with_(io_bandwidth=bw), comp).efficiency

    configs = {
        "Host multilevel": host_eval(NO_COMPRESSION),
        "Host + compression": host_eval(HOST_GZIP1),
        "NDP": ndp_eval(NO_COMPRESSION),
        "NDP + compression": ndp_eval(NDP_GZIP1),
    }
    table = TextTable(["target"] + list(configs) + ["NDP+C saving vs Host"])
    rows = []
    for target in targets:
        needs = {name: _required_io_bw(fn, target) for name, fn in configs.items()}
        saving = needs["Host multilevel"] / needs["NDP + compression"]
        table.add_row(
            [f"{target:.0%}"]
            + [
                "unreachable" if bw == float("inf") else f"{bw / 1e6:8.1f} MB/s"
                for bw in needs.values()
            ]
            + [f"{saving:5.0f}x"]
        )
        rows.append({"target": target, **needs, "saving": saving})
    note = (
        "\nReading: the projected system provides 100 MB/s per node.  Host-side"
        "\nmultilevel needs several to tens of times that for high targets —"
        "\nand host+compression saturates entirely ('unreachable') because the"
        "\nblocking 640 MB/s host compression, not I/O, becomes the wall.  NDP"
        "\nwith compression hits every target with a fraction of the provisioned"
        "\nbandwidth; the last column is the PFS bandwidth (cost) multiplier"
        "\nversus plain host multilevel."
    )
    return ExperimentResult(
        experiment="ablation-io-budget",
        title="Extension: global-I/O bandwidth required per configuration",
        rows=rows,
        text=table.render() + note,
        headline={"saving_at_85pct": rows[-1]["saving"]},
    )
