"""Extension: the economics of NDP — priced configurations.

Prices the paper's implicit procurement argument: what does the C/R
hardware of each configuration cost, and which build is cheapest for a
given progress-rate target?  Unit prices are explicit inputs (defaults
are placeholders of plausible relative magnitude); the structural result
— NDP trades a few cheap cores for a lot of expensive NVM/PFS bandwidth —
holds across wide price ranges (tested).
"""

from __future__ import annotations

from ..core.configs import paper_parameters
from ..core.economics import CostModel, _baseline_comparison, cheapest_for_target
from .common import ExperimentResult, TextTable

__all__ = ["run"]


def run(
    targets: tuple[float, ...] = (0.70, 0.80, 0.87),
    prices: CostModel | None = None,
) -> ExperimentResult:
    """Price the substitution claim and the cheapest-build sweep."""
    prices = prices or CostModel()
    params = paper_parameters()

    table = TextTable(["configuration", "efficiency", "NVM $", "NDP $", "PFS $", "total $", "$/eff-pt"])
    rows = []
    host, ndp = _baseline_comparison(params, prices)
    for c in (host, ndp):
        table.add_row(
            [
                c.label,
                f"{c.efficiency:7.3f}",
                f"{c.nvm_cost / 1e6:8.1f}M",
                f"{c.ndp_cost / 1e6:8.1f}M",
                f"{c.pfs_cost / 1e6:8.1f}M",
                f"{c.total / 1e6:8.1f}M",
                f"{c.cost_per_efficiency / 1e6:6.2f}M",
            ]
        )
        rows.append(
            {
                "configuration": c.label,
                "efficiency": c.efficiency,
                "total": c.total,
                "cost_per_eff": c.cost_per_efficiency,
            }
        )

    sweep = TextTable(["target", "cheapest host build", "cheapest NDP build", "NDP saving"])
    for target in targets:
        best_host, best_ndp = cheapest_for_target(target, prices, params)
        host_cell = (
            f"{best_host.label}: {best_host.total / 1e6:.0f}M"
            if best_host
            else "unreachable"
        )
        ndp_cell = (
            f"{best_ndp.label}: {best_ndp.total / 1e6:.0f}M"
            if best_ndp
            else "unreachable"
        )
        saving = (
            f"{best_host.total / best_ndp.total:4.1f}x"
            if best_host and best_ndp
            else "-"
        )
        sweep.add_row([f"{target:.0%}", host_cell, ndp_cell, saving])
        rows.append(
            {
                "target": target,
                "host_total": best_host.total if best_host else None,
                "ndp_total": best_ndp.total if best_ndp else None,
            }
        )
    note = (
        "\nUnit prices are placeholders (swap procurement numbers via CostModel);"
        "\nthe structure — NDP substitutes cheap cores for expensive bandwidth —"
        "\nsurvives order-of-magnitude price changes."
    )
    return ExperimentResult(
        experiment="ablation-economics",
        title="Extension: priced configurations (the substitution claim in dollars)",
        rows=rows,
        text=table.render() + "\n\n" + sweep.render() + note,
        headline={"substitution_saving": host.total / ndp.total},
    )
