"""Figure 7: overhead breakdown at 4% I/O-level recovery probability.

The four configurations (host/NDP x with/without compression) at the
average 73% compression factor, with the probability that recovery from
local storage fails set to 4% (the improved-SCR figure from Moody et al.).
Shows that the host configurations pay large Checkpoint-I/O and Rerun-I/O
components which NDP eliminates or shrinks to ~1%.
"""

from __future__ import annotations

from ..core.configs import NO_COMPRESSION, paper_parameters
from ..core.model import ModelResult, multilevel_ndp
from ..core.optimizer import optimal_host
from .common import ExperimentResult, TextTable, fig6_compression

__all__ = ["run"]

#: The paper's quoted Rerun-I/O components (fractions of execution time).
PAPER_REFERENCE = {
    "Local + I/O-H rerun_io": 0.17,
    "Local + I/O-HC rerun_io": 0.09,
    "Local + I/O-N rerun_io": 0.012,
    "Local + I/O-NC rerun_io": 0.006,
}


def run(p_io_fail: float = 0.04, factor: float = 0.728) -> ExperimentResult:
    """Evaluate the four Figure 7 configurations."""
    params = paper_parameters().with_(p_local_recovery=1.0 - p_io_fail)
    configs: dict[str, ModelResult] = {
        "Local + I/O-H": optimal_host(params, NO_COMPRESSION),
        "Local + I/O-HC": optimal_host(params, fig6_compression(factor, "host")),
        "Local + I/O-N": multilevel_ndp(params, NO_COMPRESSION),
        "Local + I/O-NC": multilevel_ndp(params, fig6_compression(factor, "ndp")),
    }
    table = TextTable(
        [
            "config",
            "progress",
            "ckpt local",
            "ckpt I/O",
            "restore local",
            "restore I/O",
            "rerun local",
            "rerun I/O",
        ]
    )
    rows = []
    for name, res in configs.items():
        b = res.breakdown
        table.add_row(
            [
                name,
                f"{b.compute:6.1%}",
                f"{b.checkpoint_local:6.2%}",
                f"{b.checkpoint_io:6.2%}",
                f"{b.restore_local:6.2%}",
                f"{b.restore_io:6.2%}",
                f"{b.rerun_local:6.2%}",
                f"{b.rerun_io:6.2%}",
            ]
        )
        rows.append({"config": name, "ratio": res.ratio, **b.as_dict()})
    note = (
        "\nNDP configurations have no Checkpoint-I/O component by construction and"
        "\ntheir Rerun-I/O shrinks to ~1% (paper: 1.2% / 0.6%); with compression the"
        "\nprogress rate approaches the 90% the system was provisioned for."
    )
    return ExperimentResult(
        experiment="figure7",
        title=f"Figure 7: overhead breakdown (p_io_recovery={p_io_fail:.0%}, CF={factor:.0%})",
        rows=rows,
        text=table.render() + note,
        headline={name: res.breakdown.rerun_io for name, res in configs.items()},
    )
