"""Figure 7: overhead breakdown at 4% I/O-level recovery probability.

The four configurations (host/NDP x with/without compression) at the
average 73% compression factor, with the probability that recovery from
local storage fails set to 4% (the improved-SCR figure from Moody et al.).
Shows that the host configurations pay large Checkpoint-I/O and Rerun-I/O
components which NDP eliminates or shrinks to ~1%.

``simulate_seeds > 0`` overlays Monte-Carlo validation of the breakdown
through one :func:`~repro.simulation.simulate_grid` pass.
"""

from __future__ import annotations

from ..core.configs import NO_COMPRESSION, paper_parameters
from ..core.model import ModelResult, multilevel_ndp
from ..core.optimizer import optimal_host
from ..simulation import ResultCache, SimConfig, default_work, simulate_grid
from .common import ExperimentResult, TextTable, fig6_compression

__all__ = ["run", "sim_configs"]

#: The paper's quoted Rerun-I/O components (fractions of execution time).
PAPER_REFERENCE = {
    "Local + I/O-H rerun_io": 0.17,
    "Local + I/O-HC rerun_io": 0.09,
    "Local + I/O-N rerun_io": 0.012,
    "Local + I/O-NC rerun_io": 0.006,
}


def sim_configs(
    p_io_fail: float = 0.04, factor: float = 0.728, mttis: float = 50.0
) -> list[SimConfig]:
    """The four Figure 7 configurations as simulator configs.

    Host modes carry the analytically optimal ratio, mirroring
    :func:`run`'s use of :func:`~repro.core.optimizer.optimal_host`.
    """
    params = paper_parameters().with_(p_local_recovery=1.0 - p_io_fail)
    work = default_work(params, mttis)
    host_comp = fig6_compression(factor, "host")
    ndp_comp = fig6_compression(factor, "ndp")
    return [
        SimConfig(
            params=params,
            strategy="host",
            ratio=optimal_host(params, NO_COMPRESSION).ratio,
            compression=NO_COMPRESSION,
            work=work,
        ),
        SimConfig(
            params=params,
            strategy="host",
            ratio=optimal_host(params, host_comp).ratio,
            compression=host_comp,
            work=work,
        ),
        SimConfig(params=params, strategy="ndp", compression=NO_COMPRESSION, work=work),
        SimConfig(params=params, strategy="ndp", compression=ndp_comp, work=work),
    ]


def run(
    p_io_fail: float = 0.04,
    factor: float = 0.728,
    simulate_seeds: int = 0,
    simulate_mttis: float = 50.0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> ExperimentResult:
    """Evaluate the four Figure 7 configurations."""
    params = paper_parameters().with_(p_local_recovery=1.0 - p_io_fail)
    configs: dict[str, ModelResult] = {
        "Local + I/O-H": optimal_host(params, NO_COMPRESSION),
        "Local + I/O-HC": optimal_host(params, fig6_compression(factor, "host")),
        "Local + I/O-N": multilevel_ndp(params, NO_COMPRESSION),
        "Local + I/O-NC": multilevel_ndp(params, fig6_compression(factor, "ndp")),
    }
    table = TextTable(
        [
            "config",
            "progress",
            "ckpt local",
            "ckpt I/O",
            "restore local",
            "restore I/O",
            "rerun local",
            "rerun I/O",
        ]
    )
    rows = []
    for name, res in configs.items():
        b = res.breakdown
        table.add_row(
            [
                name,
                f"{b.compute:6.1%}",
                f"{b.checkpoint_local:6.2%}",
                f"{b.checkpoint_io:6.2%}",
                f"{b.restore_local:6.2%}",
                f"{b.restore_io:6.2%}",
                f"{b.rerun_local:6.2%}",
                f"{b.rerun_io:6.2%}",
            ]
        )
        rows.append({"config": name, "ratio": res.ratio, **b.as_dict()})
    note = (
        "\nNDP configurations have no Checkpoint-I/O component by construction and"
        "\ntheir Rerun-I/O shrinks to ~1% (paper: 1.2% / 0.6%); with compression the"
        "\nprogress rate approaches the 90% the system was provisioned for."
    )
    text = table.render() + note
    if simulate_seeds:
        grid = simulate_grid(
            sim_configs(p_io_fail, factor, simulate_mttis),
            seeds=range(simulate_seeds),
            jobs=jobs,
            cache=cache,
        )
        sim_table = TextTable(["config", "sim progress", "sim rerun I/O"])
        for i, (name, row) in enumerate(zip(configs, rows)):
            row["sim_efficiency"] = float(grid.efficiency[i])
            row["sim_rerun_io"] = float(grid.breakdown["rerun_io"][i])
            sim_table.add_row(
                [
                    name,
                    f"{grid.efficiency[i]:6.1%}",
                    f"{grid.breakdown['rerun_io'][i]:6.2%}",
                ]
            )
        text += (
            f"\n\nSimulated (fast engine, {simulate_seeds} seeds x "
            f"{simulate_mttis:.0f} MTTIs per cell):\n" + sim_table.render()
        )
    return ExperimentResult(
        experiment="figure7",
        title=f"Figure 7: overhead breakdown (p_io_recovery={p_io_fail:.0%}, CF={factor:.0%})",
        rows=rows,
        text=text,
        headline={name: res.breakdown.rerun_io for name, res in configs.items()},
    )
