"""Cross-method comparison: expected-value model vs renewal chain vs DES.

Three independent treatments of the same operational semantics:

1. the paper-style expected-value model with a linear fixed point
   (:mod:`repro.core.model`, staleness accounting),
2. the absorbing-Markov renewal model (:mod:`repro.core.renewal`), and
3. the discrete-event simulator.

The expected-value model is conservative (it charges every failure the
full expected rerun); the renewal chain is optimistic (its I/O rollback
target is the current super-period start, ignoring drain/commit lag); the
simulator — which implements the drain pipeline literally — lands between
them.  The bracket width quantifies the modeling uncertainty behind every
figure.
"""

from __future__ import annotations

from ..core.configs import NDP_GZIP1, NO_COMPRESSION, CompressionSpec, paper_parameters
from ..core.model import multilevel_host, multilevel_ndp
from ..core.renewal import renewal_multilevel_host, renewal_multilevel_ndp
from ..simulation import SimConfig, default_work, simulate
from .common import ExperimentResult, TextTable

__all__ = ["run"]

_CASES: tuple[tuple[str, str, int, CompressionSpec, float], ...] = (
    ("NDP, no comp, p=85%", "ndp", 1, NO_COMPRESSION, 0.85),
    ("NDP + gzip(1), p=85%", "ndp", 1, NDP_GZIP1, 0.85),
    ("Host r=15 + gzip(1), p=85%", "host", 15, NDP_GZIP1, 0.85),
    ("NDP, no comp, p=50%", "ndp", 1, NO_COMPRESSION, 0.50),
)


def run(mttis: float = 150.0, seed: int = 23) -> ExperimentResult:
    """Evaluate each case with all three methods."""
    base = paper_parameters()
    table = TextTable(
        ["case", "expected-value", "simulation", "renewal chain", "bracket width"]
    )
    rows = []
    for label, strategy, ratio, comp, p_local in _CASES:
        p = base.with_(p_local_recovery=p_local)
        if strategy == "ndp":
            ev = multilevel_ndp(p, comp, rerun_accounting="staleness").efficiency
            rc = renewal_multilevel_ndp(p, comp).efficiency
        else:
            ev = multilevel_host(p, ratio, comp, rerun_accounting="staleness").efficiency
            rc = renewal_multilevel_host(p, ratio, comp).efficiency
        sim = simulate(
            SimConfig(
                params=p,
                strategy=strategy,
                ratio=ratio,
                compression=comp,
                work=default_work(p, mttis),
                seed=seed,
            )
        ).efficiency
        width = rc - ev
        table.add_row(
            [label, f"{ev:7.3f}", f"{sim:7.3f}", f"{rc:7.3f}", f"{width:7.3f}"]
        )
        rows.append(
            {"case": label, "expected_value": ev, "sim": sim, "renewal": rc, "width": width}
        )
    note = (
        "\nThe expected-value model lower-bounds and the renewal chain"
        "\nupper-bounds the simulated efficiency; the bracket tightens as"
        "\nrecoveries get rarer (higher p_local, compression)."
    )
    return ExperimentResult(
        experiment="ablation-methods",
        title="Three-method comparison: expected-value vs simulation vs renewal chain",
        rows=rows,
        text=table.render() + note,
        headline={"max_bracket": max(r["width"] for r in rows)},
    )
