"""repro — reproduction of *Leveraging Near Data Processing for
High-Performance Checkpoint/Restart* (Agrawal, Loh, Tuck; SC'17).

The package provides four layers:

* :mod:`repro.core` — the analytic multilevel C/R performance model, Daly's
  equations, the exascale scaling study and the NDP provisioning analysis.
* :mod:`repro.simulation` — a from-scratch discrete-event simulator of a
  compute node with NDP-capable NVM, used to validate the analytic model
  and regenerate the paper's operational timelines.
* :mod:`repro.compression` — the compression substrate (stdlib codecs plus
  a from-scratch LZ4 block codec) and the Section 5 compression study.
* :mod:`repro.workloads` — Mantevo mini-app proxy kernels producing
  realistic, compression-calibrated checkpoint state.
* :mod:`repro.ckpt` — a functional multilevel checkpoint/restart runtime
  (BLCR-style context files, NVM circular buffer, background NDP drain
  daemon, local->partner->I/O recovery).

Quickstart::

    from repro import core
    params = core.paper_parameters()
    host = core.optimal_host(params, core.HOST_GZIP1)
    ndp = core.multilevel_ndp(params, core.NDP_GZIP1)
    print(host.efficiency, ndp.efficiency)
"""

from . import core
from .core import (
    HOST_GZIP1,
    NDP_GZIP1,
    NO_COMPRESSION,
    CompressionSpec,
    CRParameters,
    ModelResult,
    OverheadBreakdown,
    io_only,
    multilevel_host,
    multilevel_ndp,
    optimal_host,
    optimal_ratio,
    paper_parameters,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "CRParameters",
    "CompressionSpec",
    "ModelResult",
    "OverheadBreakdown",
    "paper_parameters",
    "io_only",
    "multilevel_host",
    "multilevel_ndp",
    "optimal_host",
    "optimal_ratio",
    "NO_COMPRESSION",
    "HOST_GZIP1",
    "NDP_GZIP1",
    "__version__",
]
